//! The `hilog-server` binary: serve a HiLog program over JSON/HTTP.
//!
//! ```text
//! hilog-server [--addr HOST:PORT] [--workers N] [--eval-threads N]
//!              [--semantics wfs|stable|modular] [--program FILE]
//!              [--data-dir DIR] [--fsync batch|interval|never]
//!              [--no-final-checkpoint] [--timeout-ms N|none]
//!              [--max-backlog N] [--socket-timeout-ms N|none]
//! ```
//!
//! Without `--program` the server starts on an empty program; populate it
//! with `POST /assert`.  With `--data-dir` every mutation batch is written
//! to a write-ahead log before it is applied, and a restart on the same
//! directory recovers the exact pre-crash state (`--program` then only
//! seeds a *fresh* directory).  The process serves until killed.

use hilog_engine::horn::EvalOptions;
use hilog_engine::session::{HiLogDb, Semantics};
use hilog_server::{Server, ServerConfig};
use hilog_store::FsyncPolicy;
use hilog_syntax::parse_program;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: hilog-server [--addr HOST:PORT] [--workers N] [--eval-threads N] \
         [--semantics wfs|stable|modular] [--program FILE] \
         [--data-dir DIR] [--fsync batch|interval|never] [--no-final-checkpoint] \
         [--timeout-ms N|none] [--max-backlog N] [--socket-timeout-ms N|none]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut config = ServerConfig::default();
    let mut semantics = Semantics::WellFounded;
    let mut program_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| eprintln!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => match value("--addr") {
                Ok(addr) => config.addr = addr,
                Err(()) => return usage(),
            },
            "--workers" => match value("--workers").map(|v| v.parse::<usize>()) {
                Ok(Ok(n)) if n > 0 => config.workers = n,
                _ => {
                    eprintln!("--workers requires a positive integer");
                    return usage();
                }
            },
            "--eval-threads" => match value("--eval-threads").map(|v| v.parse::<usize>()) {
                Ok(Ok(n)) if n > 0 => config.eval_threads = n,
                _ => {
                    eprintln!("--eval-threads requires a positive integer (1 = serial evaluation)");
                    return usage();
                }
            },
            "--semantics" => match value("--semantics").as_deref() {
                Ok("wfs" | "well-founded") => semantics = Semantics::WellFounded,
                Ok("stable") => semantics = Semantics::Stable,
                Ok("modular") => semantics = Semantics::ModularCheck,
                _ => {
                    eprintln!("--semantics must be wfs, stable, or modular");
                    return usage();
                }
            },
            "--program" => match value("--program") {
                Ok(path) => program_path = Some(path),
                Err(()) => return usage(),
            },
            "--data-dir" => match value("--data-dir") {
                Ok(dir) => config.data_dir = Some(dir.into()),
                Err(()) => return usage(),
            },
            "--fsync" => match value("--fsync").as_deref() {
                Ok("batch") => config.fsync = FsyncPolicy::PerBatch,
                // Bounds acknowledgement-to-durability at ~50ms while keeping
                // the fsync off the per-request path.
                Ok("interval") => config.fsync = FsyncPolicy::Interval(Duration::from_millis(50)),
                Ok("never") => config.fsync = FsyncPolicy::Never,
                _ => {
                    eprintln!("--fsync must be batch, interval, or never");
                    return usage();
                }
            },
            "--no-final-checkpoint" => config.checkpoint_on_shutdown = false,
            "--timeout-ms" => match value("--timeout-ms").as_deref() {
                Ok("none") => config.default_timeout_ms = None,
                Ok(raw) => match raw.parse::<u64>() {
                    Ok(ms) if ms > 0 => config.default_timeout_ms = Some(ms),
                    _ => {
                        eprintln!("--timeout-ms requires a positive integer or `none`");
                        return usage();
                    }
                },
                Err(()) => return usage(),
            },
            "--max-backlog" => match value("--max-backlog").map(|v| v.parse::<usize>()) {
                Ok(Ok(n)) if n > 0 => config.max_backlog = n,
                _ => {
                    eprintln!("--max-backlog requires a positive integer");
                    return usage();
                }
            },
            "--socket-timeout-ms" => match value("--socket-timeout-ms").as_deref() {
                Ok("none") => config.socket_timeout = None,
                Ok(raw) => match raw.parse::<u64>() {
                    Ok(ms) if ms > 0 => {
                        config.socket_timeout = Some(Duration::from_millis(ms));
                    }
                    _ => {
                        eprintln!("--socket-timeout-ms requires a positive integer or `none`");
                        return usage();
                    }
                },
                Err(()) => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag: {other}");
                return usage();
            }
        }
    }

    let program = match &program_path {
        None => hilog_core::Program::new(),
        Some(path) => {
            let source = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match parse_program(&source) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("cannot parse {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let db = HiLogDb::builder()
        .program(program)
        .semantics(semantics)
        .options(EvalOptions::default().eval_threads(config.eval_threads))
        .build();
    let server = match Server::bind(config.clone(), db) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    let recovery = server.recovery();
    if recovery.recovered {
        println!(
            "hilog-server recovered from checkpoint epoch {} (+{} WAL records, {} ops)",
            recovery.checkpoint_epoch.unwrap_or(0),
            recovery.replayed_records,
            recovery.replayed_ops,
        );
    }
    println!(
        "hilog-server listening on http://{} ({} workers, {} eval threads, {} semantics{})",
        server.local_addr(),
        config.workers,
        config.eval_threads,
        semantics,
        match &config.data_dir {
            Some(dir) => format!(", durable under {}", dir.display()),
            None => String::new(),
        },
    );
    server.serve();
    ExitCode::SUCCESS
}
