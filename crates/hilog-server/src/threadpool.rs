//! A small scoped-thread worker pool: N workers drain a channel of jobs
//! until the sender is dropped.  Scoped threads let the workers borrow the
//! server state without `'static` bounds or reference counting.

use std::sync::mpsc::Receiver;
use std::sync::{Mutex, PoisonError};

/// Runs `job` over every item the receiver yields, on `workers` scoped
/// threads.  Returns when the channel's sender is dropped and the queue is
/// drained.  A panicking job takes down its worker (and, through the scope,
/// the pool) — handlers are expected to turn failures into responses
/// instead.
pub fn run_pool<T, F>(workers: usize, receiver: Receiver<T>, job: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    let receiver = Mutex::new(receiver);
    std::thread::scope(|scope| {
        for _ in 0..workers.max(1) {
            scope.spawn(|| loop {
                // Hold the lock only for the dequeue, not the job.
                let item = receiver
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .recv();
                match item {
                    Ok(item) => job(item),
                    Err(_) => break, // sender dropped: pool shutdown
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn pool_processes_every_item_then_exits() {
        let (tx, rx) = mpsc::channel();
        let done = AtomicUsize::new(0);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        run_pool(4, rx, |_item: usize| {
            done.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(done.load(Ordering::SeqCst), 100);
    }
}
