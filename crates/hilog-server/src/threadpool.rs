//! The server's request worker pool, built on the engine's batch primitive
//! ([`hilog_engine::run_tasks`]): each worker is one long-lived task that
//! drains a shared channel of jobs until the sender is dropped.  Scoped
//! threads (inside `run_tasks`) let the workers borrow the server state
//! without `'static` bounds or reference counting.

use std::sync::mpsc::Receiver;
use std::sync::{Mutex, PoisonError};

/// Runs `job` over every item the receiver yields, on `workers` scoped
/// threads.  Returns when the channel's sender is dropped and the queue is
/// drained.  A panicking job takes down its worker (and, through the scope,
/// the pool) — handlers are expected to turn failures into responses
/// instead.
///
/// With one worker the drain loop runs inline on the calling thread — the
/// same serial fallback the engine's evaluation paths get.  Each worker
/// counts as a single pool task over the server's lifetime, a negligible
/// (and documented) contribution to the process-wide
/// `EvalStats.parallel_tasks` totals.
pub fn run_pool<T, F>(workers: usize, receiver: Receiver<T>, job: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    let receiver = Mutex::new(receiver);
    let workers = workers.max(1);
    let drains: Vec<_> = (0..workers)
        .map(|_| {
            let receiver = &receiver;
            let job = &job;
            move || loop {
                // Hold the lock only for the dequeue, not the job.
                let item = receiver
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .recv();
                match item {
                    Ok(item) => job(item),
                    Err(_) => break, // sender dropped: pool shutdown
                }
            }
        })
        .collect();
    hilog_engine::run_tasks(workers, drains);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn pool_processes_every_item_then_exits() {
        let (tx, rx) = mpsc::channel();
        let done = AtomicUsize::new(0);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        run_pool(4, rx, |_item: usize| {
            done.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(done.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn single_worker_pool_runs_inline() {
        let (tx, rx) = mpsc::channel();
        let done = AtomicUsize::new(0);
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        run_pool(1, rx, |_item: usize| {
            done.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(done.load(Ordering::SeqCst), 10);
    }
}
