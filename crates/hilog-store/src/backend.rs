//! The storage facade the serving layer writes through.
//!
//! [`StorageBackend`] is deliberately narrow — append a batch, write a
//! checkpoint, flush, report stats — so the writer path stays identical
//! whether anything touches disk or not.  [`InMemory`] is a no-op (today's
//! behaviour, zero overhead); [`Durable`] composes the [`crate::wal`] and
//! [`crate::checkpoint`] modules under one data directory:
//!
//! ```text
//! <data-dir>/
//!   wal.log                            the write-ahead log
//!   checkpoint-<epoch:020>.hsnp        newest-first recovery candidates
//! ```

use crate::checkpoint::{
    load_latest_checkpoint, prune_checkpoints, save_checkpoint, CheckpointData,
};
use crate::error::StoreError;
use crate::ops::Op;
use crate::wal::{FsyncPolicy, Wal, WalRecord, WAL_FILE};
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Configuration of a [`Durable`] backend.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding the WAL and checkpoints (created if absent).
    pub data_dir: PathBuf,
    /// When WAL appends reach stable storage.
    pub fsync: FsyncPolicy,
    /// Checkpoints retained after each new one (older files are pruned).
    /// The newest is always kept; 2 keeps one fallback behind it.
    pub keep_checkpoints: usize,
}

impl StoreConfig {
    /// Durable defaults: per-batch fsync, two retained checkpoints.
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        StoreConfig {
            data_dir: data_dir.into(),
            fsync: FsyncPolicy::PerBatch,
            keep_checkpoints: 2,
        }
    }

    /// Switches to interval fsync (the `<10%` serving-overhead setting).
    pub fn fsync_interval(mut self, window: Duration) -> Self {
        self.fsync = FsyncPolicy::Interval(window);
        self
    }
}

/// A point-in-time view of the storage layer, reported by `GET /stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// `false` for [`InMemory`] (every other field is then zero).
    pub durable: bool,
    /// Records currently in the WAL (since the last checkpoint/truncate).
    pub wal_records: usize,
    /// Bytes currently in the WAL.
    pub wal_bytes: u64,
    /// Epoch of the most recent checkpoint written or recovered from, if
    /// any.
    pub last_checkpoint_epoch: Option<u64>,
    /// Total size of the data directory (WAL + checkpoints), in bytes.
    pub data_dir_bytes: u64,
}

/// What the serving layer asks of storage.  Object-safe so the server holds
/// a `Box<dyn StorageBackend>` chosen at startup.
pub trait StorageBackend: std::fmt::Debug + Send {
    /// Makes the batch that will publish `epoch` durable *before* it is
    /// applied.  This is the commit point: a batch whose append returned is
    /// replayed after a crash; one whose append tore is truncated away.
    fn append_batch(&mut self, epoch: u64, ops: &[Op]) -> Result<(), StoreError>;

    /// Persists a whole-store checkpoint, prunes old ones and truncates the
    /// WAL (whose records the checkpoint subsumes).  Returns the file path,
    /// or `None` for backends that store nothing.
    fn write_checkpoint(&mut self, data: &CheckpointData) -> Result<Option<PathBuf>, StoreError>;

    /// Forces everything buffered to stable storage (graceful shutdown).
    fn flush(&mut self) -> Result<(), StoreError>;

    /// Current storage counters.
    fn stats(&self) -> StorageStats;
}

/// The zero-overhead backend: nothing is stored, every call succeeds.
#[derive(Debug, Default, Clone, Copy)]
pub struct InMemory;

impl StorageBackend for InMemory {
    fn append_batch(&mut self, _epoch: u64, _ops: &[Op]) -> Result<(), StoreError> {
        Ok(())
    }

    fn write_checkpoint(&mut self, _data: &CheckpointData) -> Result<Option<PathBuf>, StoreError> {
        Ok(None)
    }

    fn flush(&mut self) -> Result<(), StoreError> {
        Ok(())
    }

    fn stats(&self) -> StorageStats {
        StorageStats::default()
    }
}

/// What [`Durable::open`] found on disk, for the recovery path to replay.
#[derive(Debug)]
pub struct Recovered {
    /// The newest valid checkpoint, if any.
    pub checkpoint: Option<CheckpointData>,
    /// Every valid WAL record, oldest first (the torn tail is already
    /// truncated).  May include records at or below the checkpoint epoch if
    /// the process died between writing a checkpoint and truncating the log;
    /// replay skips those.
    pub wal_records: Vec<WalRecord>,
}

/// WAL + checkpoints under one data directory.
#[derive(Debug)]
pub struct Durable {
    dir: PathBuf,
    wal: Wal,
    last_checkpoint_epoch: Option<u64>,
    keep_checkpoints: usize,
}

impl Durable {
    /// Opens (creating if needed) the data directory, validating the WAL and
    /// locating the newest valid checkpoint.  The caller replays
    /// [`Recovered`] before serving.
    pub fn open(config: &StoreConfig) -> Result<(Durable, Recovered), StoreError> {
        fs::create_dir_all(&config.data_dir)?;
        let checkpoint = load_latest_checkpoint(&config.data_dir)?;
        let (wal, wal_records) = Wal::open(config.data_dir.join(WAL_FILE), config.fsync)?;
        let (checkpoint, last_checkpoint_epoch) = match checkpoint {
            Some((data, _path)) => {
                let epoch = data.epoch;
                (Some(data), Some(epoch))
            }
            None => (None, None),
        };
        if checkpoint.is_none() && !wal_records.is_empty() {
            // The protocol writes checkpoint-0 before the first append, so a
            // WAL with no checkpoint means every checkpoint was lost: the
            // records have no base state to replay onto.
            return Err(StoreError::Corrupt(format!(
                "{} holds a write-ahead log but no valid checkpoint",
                config.data_dir.display()
            )));
        }
        Ok((
            Durable {
                dir: config.data_dir.clone(),
                wal,
                last_checkpoint_epoch,
                keep_checkpoints: config.keep_checkpoints,
            },
            Recovered {
                checkpoint,
                wal_records,
            },
        ))
    }

    /// The data directory this backend writes under.
    pub fn data_dir(&self) -> &Path {
        &self.dir
    }
}

impl StorageBackend for Durable {
    fn append_batch(&mut self, epoch: u64, ops: &[Op]) -> Result<(), StoreError> {
        self.wal.append(epoch, ops)
    }

    fn write_checkpoint(&mut self, data: &CheckpointData) -> Result<Option<PathBuf>, StoreError> {
        let path = save_checkpoint(&self.dir, data)?;
        self.last_checkpoint_epoch = Some(data.epoch);
        prune_checkpoints(&self.dir, self.keep_checkpoints)?;
        // Truncate last: if we die before this, recovery loads the new
        // checkpoint and skips the stale records by epoch.
        self.wal.truncate()?;
        Ok(Some(path))
    }

    fn flush(&mut self) -> Result<(), StoreError> {
        self.wal.flush()
    }

    fn stats(&self) -> StorageStats {
        let data_dir_bytes = fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .filter_map(|e| e.metadata().ok())
                    .filter(|m| m.is_file())
                    .map(|m| m.len())
                    .sum()
            })
            .unwrap_or(0);
        StorageStats {
            durable: true,
            wal_records: self.wal.records(),
            wal_bytes: self.wal.bytes(),
            last_checkpoint_epoch: self.last_checkpoint_epoch,
            data_dir_bytes,
        }
    }
}
