//! The storage facade the serving layer writes through.
//!
//! [`StorageBackend`] is deliberately narrow — append a batch, write a
//! checkpoint, flush, report stats — so the writer path stays identical
//! whether anything touches disk or not.  [`InMemory`] is a no-op (today's
//! behaviour, zero overhead); [`Durable`] composes the [`crate::wal`] and
//! [`crate::checkpoint`] modules under one data directory:
//!
//! ```text
//! <data-dir>/
//!   wal.log                            the write-ahead log
//!   checkpoint-<epoch:020>.hsnp        newest-first recovery candidates
//! ```

use crate::checkpoint::{
    load_checkpoint, load_latest_checkpoint, prune_checkpoints, save_checkpoint, CheckpointData,
};
use crate::error::StoreError;
use crate::io::{with_retry, RealIo, RetryPolicy, StoreIo};
use crate::manifest::{
    build_manifest, load_manifest, load_manifest_program, manifest_candidates, prune_incremental,
    save_manifest, Manifest, RelKey,
};
use crate::ops::Op;
use crate::wal::{FsyncPolicy, Wal, WalRecord, WAL_FILE};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Configuration of a [`Durable`] backend.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding the WAL and checkpoints (created if absent).
    pub data_dir: PathBuf,
    /// When WAL appends reach stable storage.
    pub fsync: FsyncPolicy,
    /// Checkpoints retained after each new one (older files are pruned).
    /// The newest is always kept; 2 keeps one fallback behind it.
    pub keep_checkpoints: usize,
    /// The filesystem backend every durability operation goes through.
    /// [`RealIo`] in production; a [`crate::io::FaultIo`] in resilience
    /// tests.
    pub io: Arc<dyn StoreIo>,
    /// How transient I/O failures are retried before escalating.
    pub retry: RetryPolicy,
}

impl StoreConfig {
    /// Durable defaults: per-batch fsync, two retained checkpoints.
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        StoreConfig {
            data_dir: data_dir.into(),
            fsync: FsyncPolicy::PerBatch,
            keep_checkpoints: 2,
            io: Arc::new(RealIo::new()),
            retry: RetryPolicy::default(),
        }
    }

    /// Sets the WAL fsync policy.
    pub fn fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Switches to interval fsync (the `<10%` serving-overhead setting).
    pub fn fsync_interval(mut self, window: Duration) -> Self {
        self.fsync = FsyncPolicy::Interval(window);
        self
    }

    /// Replaces the filesystem backend (fault injection hooks in here).
    pub fn io(mut self, io: Arc<dyn StoreIo>) -> Self {
        self.io = io;
        self
    }

    /// Replaces the transient-failure retry policy.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// A point-in-time view of the storage layer, reported by `GET /stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// `false` for [`InMemory`] (every other field is then zero).
    pub durable: bool,
    /// Records currently in the WAL (since the last checkpoint/truncate).
    pub wal_records: usize,
    /// Bytes currently in the WAL.
    pub wal_bytes: u64,
    /// Epoch of the most recent checkpoint written or recovered from, if
    /// any.
    pub last_checkpoint_epoch: Option<u64>,
    /// Total size of the data directory (WAL + checkpoints), in bytes.
    pub data_dir_bytes: u64,
    /// Segment files the most recent *incremental* checkpoint wrote (clean
    /// relations reuse their old segments and don't count).  Zero after a
    /// whole-store checkpoint.
    pub last_checkpoint_segments: usize,
    /// Bytes the most recent checkpoint added: the whole `.hsnp` file for a
    /// full one, new segments + manifest for an incremental one — the
    /// observable "delta size" an incremental checkpoint is supposed to
    /// shrink.
    pub last_checkpoint_bytes: u64,
    /// Segments the current manifest references (0 when the newest recovery
    /// point is a whole-store checkpoint).
    pub manifest_segments: usize,
    /// Filesystem operations the backend has performed.
    pub io_ops: u64,
    /// Transient I/O failures absorbed by retry (each retry attempt counts).
    pub io_retries: u64,
    /// Faults injected by a fault-injecting I/O backend (0 in production).
    pub injected_faults: u64,
}

/// What the serving layer asks of storage.  Object-safe so the server holds
/// a `Box<dyn StorageBackend>` chosen at startup.
pub trait StorageBackend: std::fmt::Debug + Send {
    /// Makes the batch that will publish `epoch` durable *before* it is
    /// applied.  This is the commit point: a batch whose append returned is
    /// replayed after a crash; one whose append tore is truncated away.
    fn append_batch(&mut self, epoch: u64, ops: &[Op]) -> Result<(), StoreError>;

    /// Persists a whole-store checkpoint, prunes old ones and truncates the
    /// WAL (whose records the checkpoint subsumes).  Returns the file path,
    /// or `None` for backends that store nothing.
    fn write_checkpoint(&mut self, data: &CheckpointData) -> Result<Option<PathBuf>, StoreError>;

    /// Persists an *incremental* checkpoint: fresh segment files for the
    /// relations in `dirty` (and any relation without a segment yet), a
    /// manifest copying every clean relation's entry forward, then truncates
    /// the WAL.  `data.model` is ignored — incremental checkpoints persist
    /// the program only.  Backends that store nothing return the default
    /// outcome.
    fn write_incremental(
        &mut self,
        data: &CheckpointData,
        dirty: &BTreeSet<RelKey>,
    ) -> Result<IncrementalOutcome, StoreError>;

    /// Forces everything buffered to stable storage (graceful shutdown).
    fn flush(&mut self) -> Result<(), StoreError>;

    /// Current storage counters.
    fn stats(&self) -> StorageStats;
}

/// What one incremental checkpoint did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IncrementalOutcome {
    /// The manifest's path (`None` for backends that store nothing).
    pub path: Option<PathBuf>,
    /// Segment files written (dirty or previously unsegmented relations).
    pub segments_written: usize,
    /// Segments the manifest references in total, reused ones included.
    pub segments_total: usize,
    /// Bytes this checkpoint added to the directory (new segments + the
    /// manifest file) — the incremental delta.
    pub bytes_written: u64,
}

/// The zero-overhead backend: nothing is stored, every call succeeds.
#[derive(Debug, Default, Clone, Copy)]
pub struct InMemory;

impl StorageBackend for InMemory {
    fn append_batch(&mut self, _epoch: u64, _ops: &[Op]) -> Result<(), StoreError> {
        Ok(())
    }

    fn write_checkpoint(&mut self, _data: &CheckpointData) -> Result<Option<PathBuf>, StoreError> {
        Ok(None)
    }

    fn write_incremental(
        &mut self,
        _data: &CheckpointData,
        _dirty: &BTreeSet<RelKey>,
    ) -> Result<IncrementalOutcome, StoreError> {
        Ok(IncrementalOutcome::default())
    }

    fn flush(&mut self) -> Result<(), StoreError> {
        Ok(())
    }

    fn stats(&self) -> StorageStats {
        StorageStats::default()
    }
}

/// What [`Durable::open`] found on disk, for the recovery path to replay.
#[derive(Debug)]
pub struct Recovered {
    /// The newest valid recovery point (whole-store checkpoint *or*
    /// incremental manifest), if any.  A manifest recovery carries
    /// `model: None` — incremental checkpoints persist the program only.
    pub checkpoint: Option<CheckpointData>,
    /// `true` when `checkpoint` came from an incremental manifest.
    pub from_manifest: bool,
    /// Every valid WAL record, oldest first (the torn tail is already
    /// truncated).  May include records at or below the checkpoint epoch if
    /// the process died between writing a checkpoint and truncating the log;
    /// replay skips those.
    pub wal_records: Vec<WalRecord>,
}

/// WAL + checkpoints (whole-store and incremental) under one data
/// directory.
#[derive(Debug)]
pub struct Durable {
    dir: PathBuf,
    io: Arc<dyn StoreIo>,
    retry: RetryPolicy,
    retries: AtomicU64,
    wal: Wal,
    last_checkpoint_epoch: Option<u64>,
    keep_checkpoints: usize,
    /// The manifest whose segments the next incremental checkpoint may copy
    /// forward.  `None` until a manifest is written or recovered from this
    /// run's recovery point — a manifest *older* than the recovery point
    /// must not seed reuse (mutations between the two are not in any dirty
    /// set), so recovery through a whole-store checkpoint resets this.
    manifest: Option<Manifest>,
    last_checkpoint_segments: usize,
    last_checkpoint_bytes: u64,
}

/// The newest recovery point that validates end-to-end: walks whole-store
/// checkpoints and manifests together, newest epoch first, skipping any
/// candidate that is torn, stale, or (for a manifest) missing a segment.
fn load_latest_recovery(
    io: &dyn StoreIo,
    dir: &Path,
) -> Result<Option<(CheckpointData, Option<Manifest>)>, StoreError> {
    enum Candidate {
        Full(PathBuf),
        Incremental(PathBuf),
    }
    let mut candidates: Vec<(u64, Candidate)> = Vec::new();
    if let Some((data, path)) = load_latest_checkpoint(io, dir)? {
        candidates.push((data.epoch, Candidate::Full(path)));
    }
    for (epoch, path) in manifest_candidates(io, dir)? {
        candidates.push((epoch, Candidate::Incremental(path)));
    }
    candidates.sort_by_key(|c| std::cmp::Reverse(c.0));
    for (_, candidate) in candidates {
        match candidate {
            Candidate::Full(path) => match load_checkpoint(io, &path) {
                Ok(data) => return Ok(Some((data, None))),
                Err(StoreError::Corrupt(_) | StoreError::Codec(_)) => continue,
                Err(e) => return Err(e),
            },
            Candidate::Incremental(path) => {
                let manifest = match load_manifest(io, &path) {
                    Ok(manifest) => manifest,
                    Err(StoreError::Corrupt(_) | StoreError::Codec(_)) => continue,
                    Err(e) => return Err(e),
                };
                match load_manifest_program(io, dir, &manifest) {
                    Ok(program) => {
                        let data = CheckpointData {
                            epoch: manifest.epoch,
                            semantics: manifest.semantics,
                            program,
                            model: None,
                        };
                        return Ok(Some((data, Some(manifest))));
                    }
                    Err(StoreError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => continue,
                    Err(StoreError::Corrupt(_) | StoreError::Codec(_)) => continue,
                    Err(e) => return Err(e),
                }
            }
        }
    }
    Ok(None)
}

impl Durable {
    /// Opens (creating if needed) the data directory, validating the WAL and
    /// locating the newest valid recovery point (whole-store checkpoint or
    /// incremental manifest, whichever validates at the highest epoch).  The
    /// caller replays [`Recovered`] before serving.
    pub fn open(config: &StoreConfig) -> Result<(Durable, Recovered), StoreError> {
        let io = Arc::clone(&config.io);
        io.create_dir_all(&config.data_dir)?;
        let recovery = load_latest_recovery(&*io, &config.data_dir)?;
        let (wal, wal_records) = Wal::open(&*io, config.data_dir.join(WAL_FILE), config.fsync)?;
        let (checkpoint, manifest, last_checkpoint_epoch) = match recovery {
            Some((data, manifest)) => {
                let epoch = data.epoch;
                (Some(data), manifest, Some(epoch))
            }
            None => (None, None, None),
        };
        if checkpoint.is_none() && !wal_records.is_empty() {
            // The protocol writes checkpoint-0 before the first append, so a
            // WAL with no checkpoint means every checkpoint was lost: the
            // records have no base state to replay onto.
            return Err(StoreError::Corrupt(format!(
                "{} holds a write-ahead log but no valid checkpoint",
                config.data_dir.display()
            )));
        }
        let from_manifest = manifest.is_some();
        Ok((
            Durable {
                dir: config.data_dir.clone(),
                io,
                retry: config.retry,
                retries: AtomicU64::new(0),
                wal,
                last_checkpoint_epoch,
                keep_checkpoints: config.keep_checkpoints,
                manifest,
                last_checkpoint_segments: 0,
                last_checkpoint_bytes: 0,
            },
            Recovered {
                checkpoint,
                from_manifest,
                wal_records,
            },
        ))
    }

    /// The data directory this backend writes under.
    pub fn data_dir(&self) -> &Path {
        &self.dir
    }
}

impl StorageBackend for Durable {
    fn append_batch(&mut self, epoch: u64, ops: &[Op]) -> Result<(), StoreError> {
        // Safe to retry: a failed append rolls its partial frame back before
        // returning (and poisons the log if even the rollback fails, which
        // makes the retry fail too rather than corrupt the tail).
        let wal = &mut self.wal;
        with_retry(self.retry, &self.retries, || wal.append(epoch, ops))
    }

    fn write_checkpoint(&mut self, data: &CheckpointData) -> Result<Option<PathBuf>, StoreError> {
        // Safe to retry: the checkpoint goes through a temp file + rename,
        // so a failed attempt never clobbers the previous candidate.
        let io = &*self.io;
        let dir = &self.dir;
        let path = with_retry(self.retry, &self.retries, || save_checkpoint(io, dir, data))?;
        self.last_checkpoint_epoch = Some(data.epoch);
        self.last_checkpoint_segments = 0;
        self.last_checkpoint_bytes = self.io.file_len(&path).unwrap_or(0);
        prune_checkpoints(&*self.io, &self.dir, self.keep_checkpoints)?;
        // Truncate last: if we die before this, recovery loads the new
        // checkpoint and skips the stale records by epoch.  Retried because
        // a partial truncation poisons the log against appends until a full
        // one lands (truncation is idempotent).
        let wal = &mut self.wal;
        with_retry(self.retry, &self.retries, || wal.truncate())?;
        Ok(Some(path))
    }

    fn write_incremental(
        &mut self,
        data: &CheckpointData,
        dirty: &BTreeSet<RelKey>,
    ) -> Result<IncrementalOutcome, StoreError> {
        // Segments first (each temp + fsync + rename), manifest last: a
        // crash anywhere in between leaves the previous manifest — whose
        // segments are only pruned after a newer manifest commits — fully
        // loadable.
        // Retried as a unit: segments and manifest all go through temp
        // files, so a failed attempt leaves only stray `.tmp`/orphan files
        // that the next prune sweeps up — the previous manifest stays the
        // recovery point until `save_manifest` renames the new one in.
        let io = &*self.io;
        let dir = &self.dir;
        let previous = self.manifest.as_ref();
        let (manifest, segments_written, mut bytes_written, path, manifest_bytes) =
            with_retry(self.retry, &self.retries, || {
                let (manifest, segments_written, bytes_written) = build_manifest(
                    io,
                    dir,
                    data.epoch,
                    data.semantics,
                    &data.program,
                    dirty,
                    previous,
                )?;
                let (path, manifest_bytes) = save_manifest(io, dir, &manifest)?;
                Ok((
                    manifest,
                    segments_written,
                    bytes_written,
                    path,
                    manifest_bytes,
                ))
            })?;
        bytes_written += manifest_bytes;
        let segments_total = manifest.entries.len();
        self.manifest = Some(manifest);
        self.last_checkpoint_epoch = Some(data.epoch);
        self.last_checkpoint_segments = segments_written;
        self.last_checkpoint_bytes = bytes_written;
        prune_incremental(&*self.io, &self.dir, self.keep_checkpoints)?;
        // Truncate last, same as the whole-store path: dying before this
        // replays records the manifest already subsumes, which is idempotent
        // by epoch.  Retried for the same reason as the whole-store path.
        let wal = &mut self.wal;
        with_retry(self.retry, &self.retries, || wal.truncate())?;
        Ok(IncrementalOutcome {
            path: Some(path),
            segments_written,
            segments_total,
            bytes_written,
        })
    }

    fn flush(&mut self) -> Result<(), StoreError> {
        let wal = &mut self.wal;
        with_retry(self.retry, &self.retries, || wal.flush())
    }

    fn stats(&self) -> StorageStats {
        let data_dir_bytes = self
            .io
            .list_dir(&self.dir)
            .map(|names| {
                names
                    .iter()
                    .filter_map(|name| self.io.file_len(&self.dir.join(name)).ok())
                    .sum()
            })
            .unwrap_or(0);
        let io_stats = self.io.io_stats();
        StorageStats {
            durable: true,
            wal_records: self.wal.records(),
            wal_bytes: self.wal.bytes(),
            last_checkpoint_epoch: self.last_checkpoint_epoch,
            data_dir_bytes,
            last_checkpoint_segments: self.last_checkpoint_segments,
            last_checkpoint_bytes: self.last_checkpoint_bytes,
            manifest_segments: self.manifest.as_ref().map_or(0, |m| m.entries.len()),
            io_ops: io_stats.ops,
            io_retries: self.retries.load(Ordering::Relaxed),
            injected_faults: io_stats.injected_faults,
        }
    }
}
