//! Binary checkpoints: whole-store snapshot files.
//!
//! A checkpoint captures everything the writer cannot rebuild from thin air
//! — the program's rules (initial + asserted, minus retracted) and, when the
//! session had one warm, the full model — stamped with the epoch it
//! represents.  Derived state (grounding, per-argument indexes, subgoal
//! tables, stable models) deliberately stays out of the file: it rebuilds
//! lazily on first use, which keeps checkpoints compact and the format
//! stable under engine-internal changes.
//!
//! ## File format
//!
//! `checkpoint-<epoch, 20 digits>.hsnp`, laid out as
//!
//! ```text
//! [magic "HSNP"][version: u32 LE][crc32(payload): u32 LE][payload]
//! ```
//!
//! with the payload a [`hilog_core::codec`] payload: epoch `u64`, semantics
//! tag `u8`, rule count + rules, model flag `u8` and — when present — the
//! model's true / undefined / remaining-base atom sets as term-reference
//! lists (the codec's term table stores every atom once, structure-shared).
//!
//! Writes go through a temp file + `fsync` + atomic rename + directory
//! `fsync`, so a crash leaves either the old set of checkpoints or the old
//! set plus one complete new file — never a half-written `.hsnp`.  Loading
//! takes the newest file that validates, skipping corrupt ones.

use crate::error::StoreError;
use crate::io::{OpenMode, StoreIo};
use hilog_core::codec::{crc32, PayloadReader, PayloadWriter};
use hilog_core::{Model, Program};
use hilog_engine::Semantics;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"HSNP";
const VERSION: u32 = 1;

const SEM_WELL_FOUNDED: u8 = 0;
const SEM_STABLE: u8 = 1;
const SEM_MODULAR: u8 = 2;

/// What a checkpoint file carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointData {
    /// The published epoch this state corresponds to.
    pub epoch: u64,
    /// The semantics the session answers under.
    pub semantics: Semantics,
    /// The full current program (rules + facts).
    pub program: Program,
    /// The full model, when the session had computed one; restoring it makes
    /// the first full-model query free.  `None` is always sound — the model
    /// rebuilds lazily.
    pub model: Option<Model>,
}

pub(crate) fn semantics_tag(semantics: Semantics) -> u8 {
    match semantics {
        Semantics::WellFounded => SEM_WELL_FOUNDED,
        Semantics::Stable => SEM_STABLE,
        Semantics::ModularCheck => SEM_MODULAR,
    }
}

pub(crate) fn semantics_from_tag(tag: u8) -> Result<Semantics, StoreError> {
    Ok(match tag {
        SEM_WELL_FOUNDED => Semantics::WellFounded,
        SEM_STABLE => Semantics::Stable,
        SEM_MODULAR => Semantics::ModularCheck,
        other => {
            return Err(StoreError::Corrupt(format!(
                "unknown semantics tag {other}"
            )))
        }
    })
}

/// The canonical file name of the checkpoint for `epoch` (zero-padded so
/// lexicographic order is numeric order).
pub fn checkpoint_file_name(epoch: u64) -> String {
    format!("checkpoint-{epoch:020}.hsnp")
}

fn parse_checkpoint_epoch(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("checkpoint-")?.strip_suffix(".hsnp")?;
    digits.parse().ok()
}

fn encode(data: &CheckpointData) -> Vec<u8> {
    let mut writer = PayloadWriter::new();
    writer.write_u64(data.epoch);
    writer.write_u8(semantics_tag(data.semantics));
    writer.write_u32(data.program.rules.len() as u32);
    for rule in &data.program.rules {
        writer.write_rule(rule);
    }
    match &data.model {
        None => writer.write_u8(0),
        Some(model) => {
            writer.write_u8(1);
            // True and undefined atoms, then the base atoms not already in
            // either set (`Model::new` re-extends the base with both).
            writer.write_u32(model.true_atoms().len() as u32);
            for atom in model.true_atoms() {
                writer.write_term(atom);
            }
            writer.write_u32(model.undefined_atoms().len() as u32);
            for atom in model.undefined_atoms() {
                writer.write_term(atom);
            }
            let rest: Vec<_> = model.false_base_atoms().collect();
            writer.write_u32(rest.len() as u32);
            for atom in rest {
                writer.write_term(atom);
            }
        }
    }
    writer.finish()
}

fn decode(payload: &[u8]) -> Result<CheckpointData, StoreError> {
    let mut reader = PayloadReader::new(payload)?;
    let epoch = reader.read_u64()?;
    let semantics = semantics_from_tag(reader.read_u8()?)?;
    let rule_count = reader.read_u32()? as usize;
    let mut program = Program::new();
    for _ in 0..rule_count {
        program.push(reader.read_rule()?);
    }
    let model = match reader.read_u8()? {
        0 => None,
        1 => {
            let read_terms = |reader: &mut PayloadReader<'_>| -> Result<Vec<_>, StoreError> {
                let count = reader.read_u32()? as usize;
                let mut atoms = Vec::with_capacity(count);
                for _ in 0..count {
                    atoms.push(reader.read_term()?);
                }
                Ok(atoms)
            };
            let true_atoms = read_terms(&mut reader)?;
            let undefined = read_terms(&mut reader)?;
            let base_rest = read_terms(&mut reader)?;
            Some(Model::new(base_rest, true_atoms, undefined))
        }
        other => {
            return Err(StoreError::Corrupt(format!("unknown model flag {other}")));
        }
    };
    if !reader.is_empty() {
        return Err(StoreError::Corrupt(format!(
            "{} trailing byte(s) in checkpoint payload",
            reader.remaining()
        )));
    }
    Ok(CheckpointData {
        epoch,
        semantics,
        program,
        model,
    })
}

/// Writes the checkpoint for `data.epoch` into `dir` atomically (temp file,
/// fsync, rename, directory fsync) and returns its path.  A failure at any
/// step leaves at worst a stale `.tmp` file (pruned later) — the previous
/// checkpoints are untouched, so recovery still has its candidates.
pub fn save_checkpoint(
    io: &dyn StoreIo,
    dir: &Path,
    data: &CheckpointData,
) -> Result<PathBuf, StoreError> {
    let payload = encode(data);
    let mut bytes = Vec::with_capacity(payload.len() + 12);
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&VERSION.to_le_bytes());
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);

    let final_path = dir.join(checkpoint_file_name(data.epoch));
    let tmp_path = dir.join(format!("{}.tmp", checkpoint_file_name(data.epoch)));
    {
        let mut tmp = io.open(&tmp_path, OpenMode::Truncate)?;
        tmp.write_all(&bytes)?;
        tmp.sync_data()?;
    }
    io.rename(&tmp_path, &final_path)?;
    // Best-effort, like the pre-VFS path: a lost directory entry after a
    // crash re-runs recovery from the previous checkpoint, never corrupts.
    let _ = io.sync_dir(dir);
    Ok(final_path)
}

/// Reads and validates one checkpoint file.
pub fn load_checkpoint(io: &dyn StoreIo, path: &Path) -> Result<CheckpointData, StoreError> {
    let bytes = io.read(path)?;
    if bytes.len() < 12 || &bytes[..4] != MAGIC {
        return Err(StoreError::Corrupt(format!(
            "{} is not a checkpoint file",
            path.display()
        )));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(StoreError::Corrupt(format!(
            "unsupported checkpoint version {version}"
        )));
    }
    let crc = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let payload = &bytes[12..];
    if crc32(payload) != crc {
        return Err(StoreError::Corrupt(format!(
            "checksum mismatch in {}",
            path.display()
        )));
    }
    decode(payload)
}

/// Loads the newest checkpoint in `dir` that validates, skipping (but not
/// deleting) corrupt or torn files.  `Ok(None)` when none exists.
pub fn load_latest_checkpoint(
    io: &dyn StoreIo,
    dir: &Path,
) -> Result<Option<(CheckpointData, PathBuf)>, StoreError> {
    let mut candidates: Vec<(u64, PathBuf)> = Vec::new();
    for name in io.list_dir(dir)? {
        if let Some(epoch) = parse_checkpoint_epoch(&name) {
            candidates.push((epoch, dir.join(name)));
        }
    }
    candidates.sort_by_key(|c| std::cmp::Reverse(c.0));
    for (_, path) in candidates {
        match load_checkpoint(io, &path) {
            Ok(data) => return Ok(Some((data, path))),
            // A corrupt newer file falls back to the previous checkpoint —
            // with its WAL already truncated the fallback can lose epochs,
            // but it still recovers a consistent (older) state instead of
            // nothing.
            Err(StoreError::Corrupt(_) | StoreError::Codec(_)) => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(None)
}

/// Deletes all but the newest `keep` checkpoints (and any leftover `.tmp`
/// files).  Returns how many files were removed.
pub fn prune_checkpoints(io: &dyn StoreIo, dir: &Path, keep: usize) -> Result<usize, StoreError> {
    let mut checkpoints: Vec<(u64, PathBuf)> = Vec::new();
    let mut removed = 0;
    for name in io.list_dir(dir)? {
        if name.starts_with("checkpoint-") && name.ends_with(".tmp") {
            io.remove_file(&dir.join(name))?;
            removed += 1;
        } else if let Some(epoch) = parse_checkpoint_epoch(&name) {
            checkpoints.push((epoch, dir.join(name)));
        }
    }
    checkpoints.sort_by_key(|c| std::cmp::Reverse(c.0));
    for (_, path) in checkpoints.into_iter().skip(keep.max(1)) {
        io.remove_file(&path)?;
        removed += 1;
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::RealIo;
    use hilog_syntax::parse_program;
    use std::fs;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn real() -> RealIo {
        RealIo::new()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("hilog-ckpt-{tag}-{}-{n}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample(epoch: u64, with_model: bool) -> CheckpointData {
        let program = parse_program(
            "winning(X) :- move(X, Y), not winning(Y).\n\
             move(a, b). move(b, c).",
        )
        .unwrap();
        let model = with_model.then(|| {
            let mut db = hilog_engine::HiLogDb::new(program.clone());
            db.model().unwrap().clone()
        });
        CheckpointData {
            epoch,
            semantics: Semantics::WellFounded,
            program,
            model,
        }
    }

    #[test]
    fn save_load_roundtrip_with_model() {
        let dir = temp_dir("roundtrip");
        let data = sample(17, true);
        let path = save_checkpoint(&real(), &dir, &data).unwrap();
        let loaded = load_checkpoint(&real(), &path).unwrap();
        assert_eq!(loaded, data);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_load_roundtrip_without_model() {
        let dir = temp_dir("nomodel");
        let data = sample(0, false);
        let path = save_checkpoint(&real(), &dir, &data).unwrap();
        assert_eq!(load_checkpoint(&real(), &path).unwrap(), data);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn latest_skips_corrupt_files() {
        let dir = temp_dir("corrupt");
        save_checkpoint(&real(), &dir, &sample(1, false)).unwrap();
        let newer = save_checkpoint(&real(), &dir, &sample(2, true)).unwrap();
        // Corrupt the newer file's payload.
        let mut bytes = fs::read(&newer).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&newer, &bytes).unwrap();
        let (data, path) = load_latest_checkpoint(&real(), &dir).unwrap().unwrap();
        assert_eq!(data.epoch, 1);
        assert!(path.to_string_lossy().contains("00000000000000000001"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prune_keeps_newest() {
        let dir = temp_dir("prune");
        for epoch in 1..=4 {
            save_checkpoint(&real(), &dir, &sample(epoch, false)).unwrap();
        }
        // A stray tmp file is cleaned up too.
        fs::write(dir.join("checkpoint-x.tmp"), b"junk").unwrap();
        let removed = prune_checkpoints(&real(), &dir, 2).unwrap();
        assert_eq!(removed, 3);
        let (data, _) = load_latest_checkpoint(&real(), &dir).unwrap().unwrap();
        assert_eq!(data.epoch, 4);
        assert!(!dir.join(checkpoint_file_name(1)).exists());
        assert!(dir.join(checkpoint_file_name(3)).exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_dir_has_no_checkpoint() {
        let dir = temp_dir("empty");
        assert!(load_latest_checkpoint(&real(), &dir).unwrap().is_none());
        fs::remove_dir_all(&dir).ok();
    }
}
