//! Error type of the storage layer.

use hilog_core::codec::CodecError;
use hilog_engine::EngineError;
use std::fmt;
use std::io;

/// Why a storage operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// A payload failed to decode (after its checksum passed — in practice a
    /// logic error or a version mismatch, not random corruption).
    Codec(CodecError),
    /// A file is structurally invalid beyond what the codec can say: bad
    /// magic, unsupported version, checksum mismatch where the protocol
    /// cannot recover by truncation.
    Corrupt(String),
    /// The engine rejected an operation while a WAL-committed batch was being
    /// applied.  The record is durable and `applied` operations of it took
    /// effect (and were published) — exactly the state a crash-and-replay
    /// would reproduce.
    Engine {
        /// Operations of the batch that were applied before the failure.
        applied: usize,
        /// The engine's verdict.
        error: EngineError,
    },
    /// The writer is in read-only degraded mode after a non-transient
    /// storage failure: mutations are refused until a checkpoint succeeds
    /// (the re-arm), but the last good snapshot keeps serving queries.
    Degraded {
        /// The storage failure that triggered degradation.
        reason: String,
        /// The epoch of the last successfully published batch.
        since_epoch: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "storage I/O error: {e}"),
            StoreError::Codec(e) => write!(f, "storage decode error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt storage: {msg}"),
            StoreError::Engine { applied, error } => write!(
                f,
                "engine rejected a WAL-committed batch after {applied} applied operation(s): {error}"
            ),
            StoreError::Degraded {
                reason,
                since_epoch,
            } => write!(
                f,
                "store is read-only (degraded since epoch {since_epoch}): {reason}"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Codec(e) => Some(e),
            StoreError::Corrupt(_) => None,
            StoreError::Engine { error, .. } => Some(error),
            StoreError::Degraded { .. } => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}
