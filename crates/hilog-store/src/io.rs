//! Pluggable filesystem access — the VFS seam every durability code path
//! goes through.
//!
//! [`StoreIo`] is the narrow set of filesystem operations the WAL,
//! checkpoint, manifest, and recovery modules perform: open a handle,
//! read a whole file, rename, remove, list a directory, fsync a directory.
//! [`RealIo`] maps each call to `std::fs`; [`FaultIo`] wraps any backend
//! and injects *deterministic* failures — fail the Nth operation, fail a
//! seeded fraction of operations, or fail every write once a byte quota is
//! exhausted (a tiny simulated disk).  Because every I/O operation flows
//! through one numbered stream, a test can sweep the fault point over an
//! entire recorded run ("fail op 0", "fail op 1", …) the way
//! `tests/recovery.rs` sweeps crash points, and demand that *each* single
//! failure leaves the store serving correct answers or recoverable on
//! reopen.
//!
//! Injected errors mirror the real failure modes: `ENOSPC`-style write
//! failures (optionally *short* — half the buffer lands, producing exactly
//! the torn frames the WAL and checkpoint formats must truncate away),
//! fsync failures, and rename failures.  [`RetryPolicy`] bounds how often
//! the [`crate::backend::Durable`] backend retries a failed operation
//! before escalating to the caller (which is when the serving layer drops
//! into read-only degraded mode).

use crate::error::StoreError;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// How [`StoreIo::open`] positions the returned handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenMode {
    /// Read/write, created if absent, existing bytes kept (the WAL).
    ReadWrite,
    /// Write-only, created, truncated (checkpoint/segment temp files).
    Truncate,
}

/// An open file handle behind the VFS seam.  The methods are exactly what
/// the WAL and the atomic-write protocol need — nothing more, so a fault
/// backend can intercept every byte that would reach the disk.
pub trait StoreFile: fmt::Debug + Send {
    /// Reads from the current position to EOF into `buf`.
    fn read_to_end(&mut self, buf: &mut Vec<u8>) -> io::Result<usize>;
    /// Writes the whole buffer at the current position.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Forces written data to stable storage (`fdatasync`).
    fn sync_data(&mut self) -> io::Result<()>;
    /// Truncates (or extends) the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Repositions the handle.
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64>;
}

/// Cumulative counters a backend keeps, surfaced through `GET /stats` as
/// `io_ops` / `injected_faults`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Filesystem operations performed (file ops and path ops alike).
    pub ops: u64,
    /// Faults injected by a [`FaultIo`] backend (always 0 for [`RealIo`]).
    pub injected_faults: u64,
}

/// The filesystem operations the storage layer performs.
pub trait StoreIo: fmt::Debug + Send + Sync {
    /// Opens (creating if needed) the file at `path`.
    fn open(&self, path: &Path, mode: OpenMode) -> io::Result<Box<dyn StoreFile>>;
    /// Reads the whole file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Atomically renames `from` to `to` (same directory).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Creates `path` and any missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// File names (not paths, directories skipped) inside `path`.
    fn list_dir(&self, path: &Path) -> io::Result<Vec<String>>;
    /// Size in bytes of the file at `path`.
    fn file_len(&self, path: &Path) -> io::Result<u64>;
    /// Fsyncs the directory so renames inside it are durable.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
    /// Cumulative operation/fault counters.
    fn io_stats(&self) -> IoStats;
}

// ---------------------------------------------------------------------------
// Real backend
// ---------------------------------------------------------------------------

/// The production backend: every call maps 1:1 onto `std::fs`.
#[derive(Debug, Default)]
pub struct RealIo {
    ops: Arc<AtomicU64>,
}

impl RealIo {
    /// A fresh backend with zeroed counters.
    pub fn new() -> RealIo {
        RealIo::default()
    }

    fn count(&self) {
        self.ops.fetch_add(1, Ordering::Relaxed);
    }
}

#[derive(Debug)]
struct RealFile {
    file: File,
    ops: Arc<AtomicU64>,
}

impl RealFile {
    fn count(&self) {
        self.ops.fetch_add(1, Ordering::Relaxed);
    }
}

impl StoreFile for RealFile {
    fn read_to_end(&mut self, buf: &mut Vec<u8>) -> io::Result<usize> {
        self.count();
        self.file.read_to_end(buf)
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.count();
        self.file.write_all(buf)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.count();
        self.file.sync_data()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.count();
        self.file.set_len(len)
    }

    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        self.count();
        self.file.seek(pos)
    }
}

impl StoreIo for RealIo {
    fn open(&self, path: &Path, mode: OpenMode) -> io::Result<Box<dyn StoreFile>> {
        self.count();
        let file = match mode {
            OpenMode::ReadWrite => OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(path)?,
            OpenMode::Truncate => OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(path)?,
        };
        Ok(Box::new(RealFile {
            file,
            ops: Arc::clone(&self.ops),
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.count();
        fs::read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.count();
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.count();
        fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.count();
        fs::create_dir_all(path)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<String>> {
        self.count();
        let mut names = Vec::new();
        for entry in fs::read_dir(path)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Some(name) = entry.file_name().to_str() {
                    names.push(name.to_string());
                }
            }
        }
        Ok(names)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        self.count();
        fs::metadata(path).map(|m| m.len())
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        self.count();
        // Best-effort on platforms where directories cannot be opened.
        if let Ok(handle) = File::open(path) {
            handle.sync_all()?;
        }
        Ok(())
    }

    fn io_stats(&self) -> IoStats {
        IoStats {
            ops: self.ops.load(Ordering::Relaxed),
            injected_faults: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Fault-injecting backend
// ---------------------------------------------------------------------------

/// When and how a [`FaultIo`] fails operations.  Every I/O operation —
/// file and path ops alike — increments one shared counter; the plan
/// decides per index.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Fail operations with index in `[fail_from, fail_from + fail_count)`
    /// (0-based).  `fail_count = u64::MAX` models a disk that never comes
    /// back.
    pub fail_from: Option<u64>,
    /// How many consecutive operations fail from `fail_from`.
    pub fail_count: u64,
    /// Seeded per-operation failure probability in `[0, 1]`, applied when
    /// the deterministic window misses.  Derived from `seed` and the op
    /// index only, so a run is reproducible.
    pub probability: f64,
    /// Seed for the probabilistic mode.
    pub seed: u64,
    /// When a *write* faults, land the first half of the buffer before
    /// failing — a short write, producing exactly the torn frames recovery
    /// must truncate.
    pub short_writes: bool,
    /// Fail writes with `ENOSPC` once this many cumulative bytes have been
    /// written — a tiny simulated disk.  Lifting the quota (back to `None`)
    /// models the operator freeing space.
    pub byte_quota: Option<u64>,
    /// Restrict injected faults to fsync operations only (for "the disk
    /// lies about durability" drills); other ops always pass through.
    pub fsync_only: bool,
}

#[derive(Debug, Default)]
struct FaultState {
    ops: AtomicU64,
    injected: AtomicU64,
    written: AtomicU64,
    plan: Mutex<FaultPlan>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    Write,
    Sync,
    Rename,
    Other,
}

impl FaultState {
    /// Numbers the operation and decides whether it faults.  Returns the
    /// error to inject, plus whether a faulted write should land its first
    /// half first.
    fn decide(&self, kind: OpKind, write_len: u64) -> (Option<io::Error>, bool) {
        let index = self.ops.fetch_add(1, Ordering::SeqCst);
        let plan = self.plan.lock().unwrap_or_else(PoisonError::into_inner);
        if plan.fsync_only && kind != OpKind::Sync {
            if kind == OpKind::Write {
                self.written.fetch_add(write_len, Ordering::SeqCst);
            }
            return (None, false);
        }
        let windowed = plan
            .fail_from
            .is_some_and(|from| index >= from && index - from < plan.fail_count);
        let probabilistic = !windowed && plan.probability > 0.0 && {
            // SplitMix64 over (seed, index): deterministic per op.
            let mut x = plan.seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 31;
            ((x >> 11) as f64 / (1u64 << 53) as f64) < plan.probability
        };
        let over_quota = kind == OpKind::Write
            && plan
                .byte_quota
                .is_some_and(|quota| self.written.load(Ordering::SeqCst) + write_len > quota);
        if windowed || probabilistic || over_quota {
            self.injected.fetch_add(1, Ordering::SeqCst);
            let error = match kind {
                OpKind::Write => {
                    io::Error::other("injected fault: ENOSPC (no space left on device)")
                }
                OpKind::Sync => io::Error::other("injected fault: fsync failed"),
                OpKind::Rename => io::Error::other("injected fault: rename failed"),
                OpKind::Other => io::Error::other("injected fault: I/O error"),
            };
            return (Some(error), plan.short_writes && kind == OpKind::Write);
        }
        if kind == OpKind::Write {
            self.written.fetch_add(write_len, Ordering::SeqCst);
        }
        (None, false)
    }
}

/// A [`StoreIo`] that wraps another backend and injects deterministic
/// faults per the active [`FaultPlan`].  Cloning shares the plan and the
/// counters, so a test can hold one handle while the store holds another.
#[derive(Debug, Clone)]
pub struct FaultIo {
    inner: Arc<dyn StoreIo>,
    state: Arc<FaultState>,
}

impl FaultIo {
    /// Wraps `inner` with no faults armed (ops are still counted).
    pub fn new(inner: Arc<dyn StoreIo>) -> FaultIo {
        FaultIo {
            inner,
            state: Arc::new(FaultState::default()),
        }
    }

    /// Wraps a fresh [`RealIo`].
    pub fn over_real() -> FaultIo {
        FaultIo::new(Arc::new(RealIo::new()))
    }

    /// Replaces the fault plan.
    pub fn set_plan(&self, plan: FaultPlan) {
        *self
            .state
            .plan
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = plan;
    }

    /// Arms a one-shot fault at op index `nth` (transient: the retry path
    /// succeeds).
    pub fn fail_nth(&self, nth: u64) {
        self.set_plan(FaultPlan {
            fail_from: Some(nth),
            fail_count: 1,
            ..FaultPlan::default()
        });
    }

    /// Arms a persistent failure from op index `from` on (the disk died).
    pub fn fail_from(&self, from: u64) {
        self.set_plan(FaultPlan {
            fail_from: Some(from),
            fail_count: u64::MAX,
            ..FaultPlan::default()
        });
    }

    /// Disarms all faults (ops keep counting).
    pub fn heal(&self) {
        self.set_plan(FaultPlan::default());
    }

    /// Operations performed so far (failed ones included).
    pub fn ops(&self) -> u64 {
        self.state.ops.load(Ordering::SeqCst)
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.state.injected.load(Ordering::SeqCst)
    }
}

#[derive(Debug)]
struct FaultFile {
    inner: Box<dyn StoreFile>,
    state: Arc<FaultState>,
}

impl StoreFile for FaultFile {
    fn read_to_end(&mut self, buf: &mut Vec<u8>) -> io::Result<usize> {
        if let (Some(error), _) = self.state.decide(OpKind::Other, 0) {
            return Err(error);
        }
        self.inner.read_to_end(buf)
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let (fault, short) = self.state.decide(OpKind::Write, buf.len() as u64);
        if let Some(error) = fault {
            if short && !buf.is_empty() {
                let _ = self.inner.write_all(&buf[..buf.len() / 2]);
            }
            return Err(error);
        }
        self.inner.write_all(buf)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        if let (Some(error), _) = self.state.decide(OpKind::Sync, 0) {
            return Err(error);
        }
        self.inner.sync_data()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        if let (Some(error), _) = self.state.decide(OpKind::Other, 0) {
            return Err(error);
        }
        self.inner.set_len(len)
    }

    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        if let (Some(error), _) = self.state.decide(OpKind::Other, 0) {
            return Err(error);
        }
        self.inner.seek(pos)
    }
}

impl StoreIo for FaultIo {
    fn open(&self, path: &Path, mode: OpenMode) -> io::Result<Box<dyn StoreFile>> {
        if let (Some(error), _) = self.state.decide(OpKind::Other, 0) {
            return Err(error);
        }
        Ok(Box::new(FaultFile {
            inner: self.inner.open(path, mode)?,
            state: Arc::clone(&self.state),
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        if let (Some(error), _) = self.state.decide(OpKind::Other, 0) {
            return Err(error);
        }
        self.inner.read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if let (Some(error), _) = self.state.decide(OpKind::Rename, 0) {
            return Err(error);
        }
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        if let (Some(error), _) = self.state.decide(OpKind::Other, 0) {
            return Err(error);
        }
        self.inner.remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        if let (Some(error), _) = self.state.decide(OpKind::Other, 0) {
            return Err(error);
        }
        self.inner.create_dir_all(path)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<String>> {
        if let (Some(error), _) = self.state.decide(OpKind::Other, 0) {
            return Err(error);
        }
        self.inner.list_dir(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        if let (Some(error), _) = self.state.decide(OpKind::Other, 0) {
            return Err(error);
        }
        self.inner.file_len(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        if let (Some(error), _) = self.state.decide(OpKind::Sync, 0) {
            return Err(error);
        }
        self.inner.sync_dir(path)
    }

    fn io_stats(&self) -> IoStats {
        IoStats {
            ops: self.ops(),
            injected_faults: self.injected(),
        }
    }
}

// ---------------------------------------------------------------------------
// Retry
// ---------------------------------------------------------------------------

/// Bounded retry-with-backoff for transient I/O faults.  Only
/// [`StoreError::Io`] is retried — corrupt files and engine rejections are
/// not transient.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first failure (0 disables retries).
    pub attempts: u32,
    /// Sleep before attempt `n` is `backoff * n` (linear).
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 2,
            backoff: Duration::from_millis(2),
        }
    }
}

impl RetryPolicy {
    /// No retries: every failure escalates immediately.
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 0,
            backoff: Duration::ZERO,
        }
    }
}

/// Runs `op`, retrying transient (`Io`) failures per `policy`.  Each retry
/// increments `retries`.  `op` must be safe to re-run after a failure —
/// the WAL append rolls its partial frame back before returning an error,
/// and the checkpoint/manifest writers go through temp files, so all the
/// storage-layer call sites are.
pub fn with_retry<T>(
    policy: RetryPolicy,
    retries: &AtomicU64,
    mut op: impl FnMut() -> Result<T, StoreError>,
) -> Result<T, StoreError> {
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(value) => return Ok(value),
            Err(StoreError::Io(error)) if attempt < policy.attempts => {
                attempt += 1;
                retries.fetch_add(1, Ordering::Relaxed);
                let _ = error;
                if !policy.backoff.is_zero() {
                    std::thread::sleep(policy.backoff * attempt);
                }
            }
            Err(error) => return Err(error),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fail_nth_faults_exactly_one_op() {
        let io = FaultIo::over_real();
        let dir = std::env::temp_dir();
        io.fail_nth(1);
        // Op 0 passes, op 1 faults, op 2 passes again.
        assert!(io.file_len(&dir.join("does-not-exist")).is_err()); // real NotFound
        assert!(io.list_dir(&dir).is_err(), "op 1 must be injected");
        assert!(io.list_dir(&dir).is_ok());
        assert_eq!(io.injected(), 1);
        assert_eq!(io.ops(), 3);
    }

    #[test]
    fn short_write_lands_half_the_buffer() {
        let io = FaultIo::over_real();
        let path = std::env::temp_dir().join(format!("hilog-io-short-{}", std::process::id()));
        let mut file = io.open(&path, OpenMode::Truncate).unwrap(); // op 0
        io.set_plan(FaultPlan {
            fail_from: Some(1),
            fail_count: 1,
            short_writes: true,
            ..FaultPlan::default()
        });
        assert!(file.write_all(&[0xAB; 8]).is_err()); // op 1: short write
        drop(file);
        assert_eq!(std::fs::read(&path).unwrap(), vec![0xAB; 4]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn byte_quota_rejects_writes_past_the_limit() {
        let io = FaultIo::over_real();
        let path = std::env::temp_dir().join(format!("hilog-io-quota-{}", std::process::id()));
        io.set_plan(FaultPlan {
            byte_quota: Some(10),
            ..FaultPlan::default()
        });
        let mut file = io.open(&path, OpenMode::Truncate).unwrap();
        file.write_all(&[1; 8]).unwrap();
        assert!(file.write_all(&[2; 8]).is_err(), "quota exceeded");
        io.heal();
        file.write_all(&[3; 8]).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn retry_absorbs_transient_faults_and_counts() {
        let retries = AtomicU64::new(0);
        let mut failures_left = 2;
        let result = with_retry(
            RetryPolicy {
                attempts: 3,
                backoff: Duration::ZERO,
            },
            &retries,
            || {
                if failures_left > 0 {
                    failures_left -= 1;
                    Err(StoreError::Io(io::Error::other("x")))
                } else {
                    Ok(42)
                }
            },
        );
        assert_eq!(result.unwrap(), 42);
        assert_eq!(retries.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn retry_does_not_touch_non_transient_errors() {
        let retries = AtomicU64::new(0);
        let result: Result<(), _> = with_retry(RetryPolicy::default(), &retries, || {
            Err(StoreError::Corrupt("bad magic".into()))
        });
        assert!(matches!(result, Err(StoreError::Corrupt(_))));
        assert_eq!(retries.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn probabilistic_plan_is_deterministic_per_seed() {
        let decide = |seed| {
            let state = FaultState {
                plan: Mutex::new(FaultPlan {
                    probability: 0.5,
                    seed,
                    ..FaultPlan::default()
                }),
                ..FaultState::default()
            };
            (0..64)
                .map(|_| state.decide(OpKind::Other, 0).0.is_some())
                .collect::<Vec<_>>()
        };
        assert_eq!(decide(7), decide(7), "same seed, same fault stream");
        assert_ne!(decide(7), decide(8), "different seeds diverge");
        let faults = decide(7).iter().filter(|&&f| f).count();
        assert!(faults > 8 && faults < 56, "roughly half fault: {faults}");
    }
}
