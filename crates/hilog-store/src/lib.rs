//! # hilog-store — durable storage for the HiLog serving stack
//!
//! PR 6 split the engine into a single [`DbWriter`](hilog_engine::DbWriter)
//! and lock-free reader snapshots; this crate makes the writer's state
//! survive the process.  Three pieces, composed behind one trait:
//!
//! * a **write-ahead log** ([`wal`]) of mutation batches — length-prefixed,
//!   CRC-32-checksummed records, one per published epoch, appended *before*
//!   the batch is applied;
//! * **binary checkpoints** of the store, in two granularities: whole-store
//!   ([`checkpoint`]) — program rules plus (when warm) the full model,
//!   interned through the payload-local symbol/term tables of
//!   [`hilog_core::codec`] and stamped with the epoch they capture — and
//!   **incremental** ([`manifest`]) — one segment file per relation plus a
//!   manifest naming the full state, where only relations dirtied since
//!   the last manifest are rewritten and clean ones reuse their previous
//!   segment byte-for-byte;
//! * **recovery** ([`serving::PersistentWriter::open`]) — load the newest
//!   valid recovery point (whole-store checkpoint or manifest, torn or
//!   stale candidates skipped), replay the WAL tail through the same
//!   incremental mutation path the live server uses (torn final record
//!   truncated, checksums verified), resume serving at the recovered
//!   epoch.
//!
//! The [`backend::StorageBackend`] trait hides all of it from the serving
//! layer: [`backend::InMemory`] is today's behaviour at zero overhead,
//! [`backend::Durable`] is WAL + checkpoints under a `--data-dir`.  The
//! publish pipeline becomes
//!
//! ```text
//! WAL-append  →  apply incrementally  →  Arc-swap snapshot
//! ```
//!
//! so every published epoch is durable (at the chosen
//! [`wal::FsyncPolicy`]) before any reader can observe it.  Checkpointing
//! truncates the log and garbage-collects the global symbol pool — persisted
//! files use payload-local ids, so collection never remaps anything on disk.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod checkpoint;
pub mod error;
pub mod io;
pub mod manifest;
pub mod ops;
pub mod serving;
pub mod wal;

pub use backend::{
    Durable, InMemory, IncrementalOutcome, StorageBackend, StorageStats, StoreConfig,
};
pub use checkpoint::CheckpointData;
pub use error::StoreError;
pub use io::{FaultIo, FaultPlan, IoStats, OpenMode, RealIo, RetryPolicy, StoreFile, StoreIo};
pub use manifest::{rel_key, Manifest, RelKey, SegmentEntry};
pub use ops::Op;
pub use serving::{
    BatchOutcome, CheckpointOutcome, DegradedState, PersistentWriter, RecoveryReport,
};
pub use wal::{FsyncPolicy, Wal, WalRecord};
