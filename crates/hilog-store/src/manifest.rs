//! Incremental checkpoints: per-relation segment files + a manifest.
//!
//! A whole-store checkpoint ([`crate::checkpoint`]) rewrites every fact the
//! program holds, so its cost grows with the store, not with the change —
//! at 10^6 facts a one-relation update still pays for all of them.  The
//! incremental format splits the fact payload by relation:
//!
//! * **Segment** (`rel-<hash:016x>-<epoch:020>.hseg`) — the facts of *one*
//!   relation (one predicate key: name term + arity), self-validating
//!   (`[magic "HSEG"][version][crc32][payload]`) and immutable once
//!   renamed into place.
//! * **Manifest** (`manifest-<epoch:020>.hman`) — the recovery point: the
//!   epoch, the semantics, every *non-fact* rule (always rewritten — the
//!   rules blob is tiny next to the fact payload), and one entry per
//!   relation naming the segment that holds its facts.
//!
//! A checkpoint writes new segments only for relations *dirtied* since the
//! last manifest; clean relations' entries are copied forward, re-pointing
//! at segments written by earlier checkpoints.  Crash safety follows the
//! same discipline as the whole-store path: segments are temp-written,
//! fsynced and renamed *before* the manifest commits (temp + fsync +
//! rename + directory fsync), so a crash leaves either the old manifest —
//! whose segments are never deleted until a newer manifest commits — or
//! the new one with every segment it names already durable.  Loading takes
//! the newest recovery point (manifest *or* whole-store checkpoint) that
//! validates end-to-end, falling back to older ones when a manifest, or
//! any segment it names, is torn or stale.
//!
//! Incremental checkpoints persist the **program only** — the model
//! deliberately stays out (it rebuilds lazily, which is always sound) so a
//! small fact delta never forces a model-sized write.

use crate::checkpoint::{semantics_from_tag, semantics_tag};
use crate::error::StoreError;
use crate::io::{OpenMode, StoreIo};
use hilog_core::codec::{crc32, PayloadReader, PayloadWriter};
use hilog_core::{Program, Rule, Term};
use hilog_engine::Semantics;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};

const SEGMENT_MAGIC: &[u8; 4] = b"HSEG";
const MANIFEST_MAGIC: &[u8; 4] = b"HMAN";
const VERSION: u32 = 1;

/// The unit of incremental persistence: one relation, identified the way
/// [`hilog_engine::AtomStore`] buckets atoms — the predicate-position name
/// term (for a HiLog atom like `winning(g)(x)` that is the *instance*
/// `winning(g)`) plus the arity (`None` for a bare symbol asserted as a
/// fact).
pub type RelKey = (Term, Option<usize>);

/// The relation key of a ground fact.
pub fn rel_key(fact: &Term) -> RelKey {
    (fact.name().clone(), fact.arity())
}

fn key_hash(key: &RelKey) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut hasher);
    hasher.finish()
}

/// One manifest entry: where a relation's facts live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentEntry {
    /// The relation this segment holds.
    pub key: RelKey,
    /// Structural hash of `key`, fixed into the segment file name.
    pub hash: u64,
    /// The checkpoint epoch that wrote the segment (part of the file name,
    /// so a rewrite never clobbers a file an older manifest still names).
    pub epoch: u64,
    /// Facts in the segment.
    pub facts: u32,
    /// File size in bytes (observability: the reused-vs-rewritten split).
    pub bytes: u64,
}

impl SegmentEntry {
    /// The segment's file name inside the data directory.
    pub fn file_name(&self) -> String {
        segment_file_name(self.hash, self.epoch)
    }
}

/// The canonical segment file name for a relation-hash at a checkpoint
/// epoch.
pub fn segment_file_name(hash: u64, epoch: u64) -> String {
    format!("rel-{hash:016x}-{epoch:020}.hseg")
}

/// The canonical manifest file name (zero-padded: lexicographic order is
/// numeric order, like the whole-store checkpoints).
pub fn manifest_file_name(epoch: u64) -> String {
    format!("manifest-{epoch:020}.hman")
}

fn parse_manifest_epoch(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("manifest-")?.strip_suffix(".hman")?;
    digits.parse().ok()
}

/// An incremental recovery point: what one manifest file carries, plus the
/// entries needed to *extend* it (the next incremental checkpoint copies
/// clean entries forward from here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// The published epoch this recovery point corresponds to.
    pub epoch: u64,
    /// The semantics the session answers under.
    pub semantics: Semantics,
    /// Every non-fact rule of the program (facts live in the segments).
    pub rules: Vec<Rule>,
    /// One entry per non-empty relation.
    pub entries: Vec<SegmentEntry>,
}

fn write_framed(
    io: &dyn StoreIo,
    dir: &Path,
    name: &str,
    magic: &[u8; 4],
    payload: &[u8],
) -> Result<u64, StoreError> {
    let mut bytes = Vec::with_capacity(payload.len() + 12);
    bytes.extend_from_slice(magic);
    bytes.extend_from_slice(&VERSION.to_le_bytes());
    bytes.extend_from_slice(&crc32(payload).to_le_bytes());
    bytes.extend_from_slice(payload);
    let final_path = dir.join(name);
    let tmp_path = dir.join(format!("{name}.tmp"));
    {
        let mut tmp = io.open(&tmp_path, OpenMode::Truncate)?;
        tmp.write_all(&bytes)?;
        tmp.sync_data()?;
    }
    io.rename(&tmp_path, &final_path)?;
    Ok(bytes.len() as u64)
}

fn read_framed(io: &dyn StoreIo, path: &Path, magic: &[u8; 4]) -> Result<Vec<u8>, StoreError> {
    let mut bytes = io.read(path)?;
    if bytes.len() < 12 || &bytes[..4] != magic {
        return Err(StoreError::Corrupt(format!(
            "{} is not a {} file",
            path.display(),
            String::from_utf8_lossy(magic)
        )));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(StoreError::Corrupt(format!(
            "unsupported version {version} in {}",
            path.display()
        )));
    }
    let crc = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if crc32(&bytes[12..]) != crc {
        return Err(StoreError::Corrupt(format!(
            "checksum mismatch in {}",
            path.display()
        )));
    }
    bytes.drain(..12);
    Ok(bytes)
}

fn write_key(writer: &mut PayloadWriter, key: &RelKey) {
    writer.write_term(&key.0);
    match key.1 {
        None => writer.write_u8(0),
        Some(arity) => {
            writer.write_u8(1);
            writer.write_u32(arity as u32);
        }
    }
}

fn read_key(reader: &mut PayloadReader<'_>) -> Result<RelKey, StoreError> {
    let name = reader.read_term()?;
    let arity = match reader.read_u8()? {
        0 => None,
        1 => Some(reader.read_u32()? as usize),
        other => {
            return Err(StoreError::Corrupt(format!("unknown arity flag {other}")));
        }
    };
    Ok((name, arity))
}

/// Writes one relation's segment for checkpoint `epoch` and returns its
/// manifest entry.  Temp + fsync + rename: the file is durable (modulo the
/// directory fsync the manifest commit performs) before the manifest that
/// names it can exist.
pub fn write_segment(
    io: &dyn StoreIo,
    dir: &Path,
    key: &RelKey,
    epoch: u64,
    facts: &[Term],
) -> Result<SegmentEntry, StoreError> {
    let mut writer = PayloadWriter::new();
    write_key(&mut writer, key);
    writer.write_u32(facts.len() as u32);
    for fact in facts {
        writer.write_term(fact);
    }
    let payload = writer.finish();
    let hash = key_hash(key);
    let bytes = write_framed(
        io,
        dir,
        &segment_file_name(hash, epoch),
        SEGMENT_MAGIC,
        &payload,
    )?;
    Ok(SegmentEntry {
        key: key.clone(),
        hash,
        epoch,
        facts: facts.len() as u32,
        bytes,
    })
}

/// Reads and validates one segment, checking it holds the relation its
/// manifest entry claims (count included — a stale same-name file from a
/// different run fails here instead of silently changing the program).
pub fn load_segment(
    io: &dyn StoreIo,
    dir: &Path,
    entry: &SegmentEntry,
) -> Result<Vec<Term>, StoreError> {
    let path = dir.join(entry.file_name());
    let payload = read_framed(io, &path, SEGMENT_MAGIC)?;
    let mut reader = PayloadReader::new(&payload)?;
    let key = read_key(&mut reader)?;
    if key != entry.key {
        return Err(StoreError::Corrupt(format!(
            "{} holds relation `{}` but the manifest expects `{}`",
            path.display(),
            key.0,
            entry.key.0
        )));
    }
    let count = reader.read_u32()?;
    if count != entry.facts {
        return Err(StoreError::Corrupt(format!(
            "{} holds {count} fact(s) but the manifest expects {}",
            path.display(),
            entry.facts
        )));
    }
    let mut facts = Vec::with_capacity(count as usize);
    for _ in 0..count {
        facts.push(reader.read_term()?);
    }
    if !reader.is_empty() {
        return Err(StoreError::Corrupt(format!(
            "{} trailing byte(s) in segment payload",
            reader.remaining()
        )));
    }
    Ok(facts)
}

/// Writes the manifest for `manifest.epoch` atomically and returns its path
/// and size.  Every segment it names must already be durable.
pub fn save_manifest(
    io: &dyn StoreIo,
    dir: &Path,
    manifest: &Manifest,
) -> Result<(PathBuf, u64), StoreError> {
    let mut writer = PayloadWriter::new();
    writer.write_u64(manifest.epoch);
    writer.write_u8(semantics_tag(manifest.semantics));
    writer.write_u32(manifest.rules.len() as u32);
    for rule in &manifest.rules {
        writer.write_rule(rule);
    }
    writer.write_u32(manifest.entries.len() as u32);
    for entry in &manifest.entries {
        write_key(&mut writer, &entry.key);
        writer.write_u64(entry.hash);
        writer.write_u64(entry.epoch);
        writer.write_u32(entry.facts);
        writer.write_u64(entry.bytes);
    }
    let payload = writer.finish();
    let name = manifest_file_name(manifest.epoch);
    let bytes = write_framed(io, dir, &name, MANIFEST_MAGIC, &payload)?;
    let _ = io.sync_dir(dir);
    Ok((dir.join(name), bytes))
}

/// Reads and validates one manifest file (not its segments — see
/// [`load_manifest_program`] for the end-to-end load).
pub fn load_manifest(io: &dyn StoreIo, path: &Path) -> Result<Manifest, StoreError> {
    let payload = read_framed(io, path, MANIFEST_MAGIC)?;
    let mut reader = PayloadReader::new(&payload)?;
    let epoch = reader.read_u64()?;
    let semantics = semantics_from_tag(reader.read_u8()?)?;
    let rule_count = reader.read_u32()? as usize;
    let mut rules = Vec::with_capacity(rule_count);
    for _ in 0..rule_count {
        rules.push(reader.read_rule()?);
    }
    let entry_count = reader.read_u32()? as usize;
    let mut entries = Vec::with_capacity(entry_count);
    for _ in 0..entry_count {
        let key = read_key(&mut reader)?;
        let hash = reader.read_u64()?;
        let epoch = reader.read_u64()?;
        let facts = reader.read_u32()?;
        let bytes = reader.read_u64()?;
        entries.push(SegmentEntry {
            key,
            hash,
            epoch,
            facts,
            bytes,
        });
    }
    if !reader.is_empty() {
        return Err(StoreError::Corrupt(format!(
            "{} trailing byte(s) in manifest payload",
            reader.remaining()
        )));
    }
    Ok(Manifest {
        epoch,
        semantics,
        rules,
        entries,
    })
}

/// Loads the full program a manifest describes: its rules, then every
/// segment's facts.  Fails if *any* segment is missing, torn, or holds a
/// different relation than the manifest claims — the caller then falls back
/// to an older recovery point.
pub fn load_manifest_program(
    io: &dyn StoreIo,
    dir: &Path,
    manifest: &Manifest,
) -> Result<Program, StoreError> {
    let mut program = Program::new();
    for rule in &manifest.rules {
        program.push(rule.clone());
    }
    for entry in &manifest.entries {
        for fact in load_segment(io, dir, entry)? {
            program.push(Rule::fact(fact));
        }
    }
    Ok(program)
}

/// Every manifest in `dir`, newest epoch first.
pub fn manifest_candidates(
    io: &dyn StoreIo,
    dir: &Path,
) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut candidates: Vec<(u64, PathBuf)> = Vec::new();
    for name in io.list_dir(dir)? {
        if let Some(epoch) = parse_manifest_epoch(&name) {
            candidates.push((epoch, dir.join(name)));
        }
    }
    candidates.sort_by_key(|c| std::cmp::Reverse(c.0));
    Ok(candidates)
}

/// Builds the next manifest: clean relations copy their entry forward from
/// `previous`, dirty (or new) relations get fresh segments at `epoch`.
/// Returns the manifest plus how many segments were written and the bytes
/// they (and the manifest file) will add — the incremental delta.
pub fn build_manifest(
    io: &dyn StoreIo,
    dir: &Path,
    epoch: u64,
    semantics: Semantics,
    program: &Program,
    dirty: &BTreeSet<RelKey>,
    previous: Option<&Manifest>,
) -> Result<(Manifest, usize, u64), StoreError> {
    let mut rules = Vec::new();
    let mut facts: BTreeMap<RelKey, Vec<Term>> = BTreeMap::new();
    for rule in &program.rules {
        if rule.is_fact() {
            facts
                .entry(rel_key(&rule.head))
                .or_default()
                .push(rule.head.clone());
        } else {
            rules.push(rule.clone());
        }
    }
    let reusable: HashMap<&RelKey, &SegmentEntry> = previous
        .map(|m| m.entries.iter().map(|e| (&e.key, e)).collect())
        .unwrap_or_default();
    let mut entries = Vec::with_capacity(facts.len());
    let mut written = 0usize;
    let mut delta_bytes = 0u64;
    for (key, relation_facts) in &facts {
        match reusable.get(key).filter(|_| !dirty.contains(key)) {
            Some(entry) => entries.push((*entry).clone()),
            None => {
                let entry = write_segment(io, dir, key, epoch, relation_facts)?;
                written += 1;
                delta_bytes += entry.bytes;
                entries.push(entry);
            }
        }
    }
    Ok((
        Manifest {
            epoch,
            semantics,
            rules,
            entries,
        },
        written,
        delta_bytes,
    ))
}

/// Deletes all but the newest `keep` manifests, every segment no retained
/// manifest references, and stray `.tmp` files.  A manifest that fails to
/// parse is *kept* (deleting it could orphan the fallback chain the loader
/// walks); its segments stay pinned only if a parsable manifest names them.
pub fn prune_incremental(io: &dyn StoreIo, dir: &Path, keep: usize) -> Result<usize, StoreError> {
    let candidates = manifest_candidates(io, dir)?;
    let keep = keep.max(1);
    let mut referenced: BTreeSet<String> = BTreeSet::new();
    for (index, (_, path)) in candidates.iter().enumerate() {
        if index >= keep {
            break;
        }
        if let Ok(manifest) = load_manifest(io, path) {
            for entry in &manifest.entries {
                referenced.insert(entry.file_name());
            }
        }
    }
    let mut removed = 0usize;
    for (_, path) in candidates.into_iter().skip(keep) {
        io.remove_file(&path)?;
        removed += 1;
    }
    for name in io.list_dir(dir)? {
        let is_stray_tmp =
            (name.starts_with("rel-") || name.starts_with("manifest-")) && name.ends_with(".tmp");
        let is_orphan_segment =
            name.starts_with("rel-") && name.ends_with(".hseg") && !referenced.contains(&name);
        if is_stray_tmp || is_orphan_segment {
            io.remove_file(&dir.join(name))?;
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::RealIo;
    use hilog_syntax::{parse_program, parse_term};
    use std::fs;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn real() -> RealIo {
        RealIo::new()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("hilog-man-{tag}-{}-{n}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_program() -> Program {
        parse_program(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- edge(X, Y), path(Y, Z).\n\
             edge(a, b). edge(b, c). colour(a, red).",
        )
        .unwrap()
    }

    #[test]
    fn segment_roundtrip() {
        let dir = temp_dir("seg");
        let key = rel_key(&parse_term("edge(a, b)").unwrap());
        let facts = vec![
            parse_term("edge(a, b)").unwrap(),
            parse_term("edge(b, c)").unwrap(),
        ];
        let entry = write_segment(&real(), &dir, &key, 3, &facts).unwrap();
        assert_eq!(entry.facts, 2);
        assert_eq!(load_segment(&real(), &dir, &entry).unwrap(), facts);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_roundtrip_reconstructs_program() {
        let dir = temp_dir("roundtrip");
        let program = sample_program();
        let (manifest, written, _) = build_manifest(
            &real(),
            &dir,
            5,
            Semantics::WellFounded,
            &program,
            &BTreeSet::new(),
            None,
        )
        .unwrap();
        assert_eq!(written, 2, "edge and colour each get a segment");
        let (path, _) = save_manifest(&real(), &dir, &manifest).unwrap();
        let loaded = load_manifest(&real(), &path).unwrap();
        assert_eq!(loaded, manifest);
        let rebuilt = load_manifest_program(&real(), &dir, &loaded).unwrap();
        let mut original: Vec<String> = program.rules.iter().map(|r| r.to_string()).collect();
        let mut recovered: Vec<String> = rebuilt.rules.iter().map(|r| r.to_string()).collect();
        original.sort();
        recovered.sort();
        assert_eq!(original, recovered);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clean_relations_reuse_segments() {
        let dir = temp_dir("reuse");
        let program = sample_program();
        let (first, _, _) = build_manifest(
            &real(),
            &dir,
            1,
            Semantics::WellFounded,
            &program,
            &BTreeSet::new(),
            None,
        )
        .unwrap();
        save_manifest(&real(), &dir, &first).unwrap();
        // Dirty only `colour`: the edge segment must be copied forward.
        let mut program = program;
        program.push(Rule::fact(parse_term("colour(b, blue)").unwrap()));
        let dirty: BTreeSet<RelKey> = [rel_key(&parse_term("colour(b, blue)").unwrap())].into();
        let (second, written, _) = build_manifest(
            &real(),
            &dir,
            2,
            Semantics::WellFounded,
            &program,
            &dirty,
            Some(&first),
        )
        .unwrap();
        assert_eq!(written, 1, "only the dirty relation is rewritten");
        let edge_key = rel_key(&parse_term("edge(a, b)").unwrap());
        let edge = second.entries.iter().find(|e| e.key == edge_key).unwrap();
        assert_eq!(edge.epoch, 1, "clean segment reused from the old epoch");
        let colour_key = rel_key(&parse_term("colour(a, red)").unwrap());
        let colour = second.entries.iter().find(|e| e.key == colour_key).unwrap();
        assert_eq!(colour.epoch, 2);
        assert_eq!(colour.facts, 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prune_drops_unreferenced_segments_and_old_manifests() {
        let dir = temp_dir("prune");
        let mut program = sample_program();
        let (first, _, _) = build_manifest(
            &real(),
            &dir,
            1,
            Semantics::WellFounded,
            &program,
            &BTreeSet::new(),
            None,
        )
        .unwrap();
        save_manifest(&real(), &dir, &first).unwrap();
        // Dirty `edge` twice so two superseded edge segments accumulate.
        let dirty: BTreeSet<RelKey> = [rel_key(&parse_term("edge(a, b)").unwrap())].into();
        program.push(Rule::fact(parse_term("edge(c, d)").unwrap()));
        let (second, _, _) = build_manifest(
            &real(),
            &dir,
            2,
            Semantics::WellFounded,
            &program,
            &dirty,
            Some(&first),
        )
        .unwrap();
        save_manifest(&real(), &dir, &second).unwrap();
        program.push(Rule::fact(parse_term("edge(d, e)").unwrap()));
        let (third, _, _) = build_manifest(
            &real(),
            &dir,
            3,
            Semantics::WellFounded,
            &program,
            &dirty,
            Some(&second),
        )
        .unwrap();
        save_manifest(&real(), &dir, &third).unwrap();
        fs::write(dir.join("rel-junk.tmp"), b"junk").unwrap();
        prune_incremental(&real(), &dir, 1).unwrap();
        // Only the newest manifest and exactly its segments survive.
        let segs: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().to_str().map(String::from))
            .filter(|n| n.ends_with(".hseg"))
            .collect();
        assert_eq!(segs.len(), third.entries.len());
        for entry in &third.entries {
            assert!(segs.contains(&entry.file_name()));
        }
        assert!(!dir.join(manifest_file_name(1)).exists());
        assert!(!dir.join(manifest_file_name(2)).exists());
        assert!(dir.join(manifest_file_name(3)).exists());
        assert!(!dir.join("rel-junk.tmp").exists());
        // The surviving manifest still loads end-to-end.
        let loaded = load_manifest(&real(), &dir.join(manifest_file_name(3))).unwrap();
        load_manifest_program(&real(), &dir, &loaded).unwrap();
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_segment_fails_manifest_load() {
        let dir = temp_dir("torn");
        let program = sample_program();
        let (manifest, _, _) = build_manifest(
            &real(),
            &dir,
            1,
            Semantics::WellFounded,
            &program,
            &BTreeSet::new(),
            None,
        )
        .unwrap();
        save_manifest(&real(), &dir, &manifest).unwrap();
        // Truncate one segment mid-payload.
        let victim = dir.join(manifest.entries[0].file_name());
        let bytes = fs::read(&victim).unwrap();
        fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            load_manifest_program(&real(), &dir, &manifest),
            Err(StoreError::Corrupt(_) | StoreError::Codec(_))
        ));
        fs::remove_dir_all(&dir).ok();
    }
}
