//! The mutation vocabulary of the write-ahead log.
//!
//! One [`Op`] per engine-level mutation; one `Vec<Op>` per WAL record (=
//! per published epoch).  The encoding rides on
//! [`hilog_core::codec`] — every record is a self-contained payload with its
//! own symbol and term tables, so records decode independently of each other
//! and of the process-global symbol pool.

use crate::error::StoreError;
use hilog_core::codec::{PayloadReader, PayloadWriter};
use hilog_core::{Rule, Term};
use std::fmt;

const OP_ASSERT_FACT: u8 = 0;
const OP_RETRACT_FACT: u8 = 1;
const OP_ASSERT_RULE: u8 = 2;
const OP_RETRACT_RULE: u8 = 3;

/// One logged mutation, mirroring the [`hilog_engine::DbWriter`] surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// `DbWriter::assert_fact` — the fact must be ground (the live path
    /// validates before logging, so replay never sees a non-ground one from
    /// a well-formed log).
    AssertFact(Term),
    /// `DbWriter::retract_fact`.  Retracting an absent fact is a no-op on
    /// both the live and the replay path.
    RetractFact(Term),
    /// `DbWriter::assert_rule`.
    AssertRule(Rule),
    /// `DbWriter::retract_rule` — absent rules are a no-op, like facts.
    RetractRule(Rule),
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::AssertFact(t) => write!(f, "assert fact {t}"),
            Op::RetractFact(t) => write!(f, "retract fact {t}"),
            Op::AssertRule(r) => write!(f, "assert rule {r}"),
            Op::RetractRule(r) => write!(f, "retract rule {r}"),
        }
    }
}

/// Encodes one WAL-record payload: the epoch the batch publishes, then the
/// operations in application order.
pub fn encode_batch(epoch: u64, ops: &[Op]) -> Vec<u8> {
    let mut writer = PayloadWriter::new();
    writer.write_u64(epoch);
    writer.write_u32(ops.len() as u32);
    for op in ops {
        match op {
            Op::AssertFact(term) => {
                writer.write_u8(OP_ASSERT_FACT);
                writer.write_term(term);
            }
            Op::RetractFact(term) => {
                writer.write_u8(OP_RETRACT_FACT);
                writer.write_term(term);
            }
            Op::AssertRule(rule) => {
                writer.write_u8(OP_ASSERT_RULE);
                writer.write_rule(rule);
            }
            Op::RetractRule(rule) => {
                writer.write_u8(OP_RETRACT_RULE);
                writer.write_rule(rule);
            }
        }
    }
    writer.finish()
}

/// Decodes one WAL-record payload back into `(epoch, ops)`.
pub fn decode_batch(payload: &[u8]) -> Result<(u64, Vec<Op>), StoreError> {
    let mut reader = PayloadReader::new(payload)?;
    let epoch = reader.read_u64()?;
    let count = reader.read_u32()? as usize;
    let mut ops = Vec::with_capacity(count);
    for _ in 0..count {
        let op = match reader.read_u8()? {
            OP_ASSERT_FACT => Op::AssertFact(reader.read_term()?),
            OP_RETRACT_FACT => Op::RetractFact(reader.read_term()?),
            OP_ASSERT_RULE => Op::AssertRule(reader.read_rule()?),
            OP_RETRACT_RULE => Op::RetractRule(reader.read_rule()?),
            other => {
                return Err(StoreError::Corrupt(format!("unknown op tag {other}")));
            }
        };
        ops.push(op);
    }
    if !reader.is_empty() {
        return Err(StoreError::Corrupt(format!(
            "{} trailing byte(s) after the last op",
            reader.remaining()
        )));
    }
    Ok((epoch, ops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilog_syntax::{parse_program, parse_term};

    fn term(s: &str) -> Term {
        parse_term(s).unwrap()
    }

    fn rule(s: &str) -> Rule {
        parse_program(s).unwrap().rules.remove(0)
    }

    #[test]
    fn batch_roundtrip() {
        let ops = vec![
            Op::AssertFact(term("edge(a, b)")),
            Op::RetractFact(term("edge(b, c)")),
            Op::AssertRule(rule("tc(G)(X, Y) :- G(X, Y).")),
            Op::RetractRule(rule("p(X) :- q(X), not r(X).")),
        ];
        let payload = encode_batch(42, &ops);
        let (epoch, decoded) = decode_batch(&payload).unwrap();
        assert_eq!(epoch, 42);
        assert_eq!(decoded, ops);
    }

    #[test]
    fn empty_batch_roundtrip() {
        let payload = encode_batch(7, &[]);
        let (epoch, decoded) = decode_batch(&payload).unwrap();
        assert_eq!(epoch, 7);
        assert!(decoded.is_empty());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut payload = encode_batch(1, &[Op::AssertFact(term("p(a)"))]);
        payload.push(0);
        assert!(decode_batch(&payload).is_err());
    }
}
