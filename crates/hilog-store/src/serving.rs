//! The durable writer: [`hilog_engine::DbWriter`] behind a
//! [`StorageBackend`].
//!
//! [`PersistentWriter`] is what a server holds instead of a bare `DbWriter`.
//! Its publish pipeline is
//!
//! ```text
//! WAL-append (commit point)  →  apply incrementally  →  Arc-swap snapshot
//! ```
//!
//! so the log always runs *ahead of* or *level with* the applied state —
//! never behind it.  Replay applies each record through the same engine
//! mutation path, in the same order, with the same absent-fact/rule and
//! error handling, so a recovered session is bit-for-bit the session a
//! crash interrupted (the crash/replay differential oracle in
//! `tests/recovery.rs` checks this against fresh evaluation).

use crate::backend::{Durable, InMemory, StorageBackend, StorageStats, StoreConfig};
use crate::checkpoint::CheckpointData;
use crate::error::StoreError;
use crate::manifest::{rel_key, RelKey};
use crate::ops::Op;
use hilog_core::{gc_symbol_pool, symbol_pool_stats};
use hilog_engine::{DbSnapshot, DbWriter, EngineError, HiLogDb, Semantics, SnapshotHandle};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;

/// What one [`PersistentWriter::apply_batch`] call did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutcome {
    /// The epoch the batch published.
    pub epoch: u64,
    /// Operations that took effect.
    pub applied: usize,
    /// Indexes (into the submitted batch) of retractions that found nothing
    /// to remove — no-ops on both the live and the replay path.
    pub missing: Vec<usize>,
}

/// What one [`PersistentWriter::checkpoint`] (or
/// [`PersistentWriter::checkpoint_incremental`]) call did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointOutcome {
    /// The epoch the checkpoint captured.
    pub epoch: u64,
    /// Where it was written (`None` for the in-memory backend).
    pub path: Option<PathBuf>,
    /// Names the checkpoint-time symbol-pool GC dropped.
    pub symbols_dropped: usize,
    /// Names still live after the GC.
    pub live_symbols: usize,
    /// Segment files this checkpoint wrote (always 0 for a whole-store
    /// checkpoint, which writes one `.hsnp` file instead).
    pub segments_written: usize,
    /// Bytes this checkpoint added to the data directory — the incremental
    /// delta for [`PersistentWriter::checkpoint_incremental`], the full
    /// file size for [`PersistentWriter::checkpoint`].
    pub bytes_written: u64,
}

/// How [`PersistentWriter::open`] brought the session up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// `true` if state was restored from disk (`false`: fresh directory —
    /// the seed session was used and a baseline checkpoint written).
    pub recovered: bool,
    /// Epoch of the checkpoint that seeded recovery.
    pub checkpoint_epoch: Option<u64>,
    /// WAL records replayed on top of the checkpoint.
    pub replayed_records: usize,
    /// Operations inside those records.
    pub replayed_ops: usize,
    /// `true` when recovery loaded an incremental manifest (+ segments)
    /// rather than a whole-store checkpoint.
    pub from_manifest: bool,
}

/// Why (and since when) a writer stopped accepting mutations.  Reported
/// through `GET /stats` as `degraded: {reason, since_epoch}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedState {
    /// The storage failure that triggered degradation.
    pub reason: String,
    /// Epoch of the last successfully published batch — queries keep
    /// answering from this state.
    pub since_epoch: u64,
}

/// A [`DbWriter`] whose batches are durable before they are visible.
#[derive(Debug)]
pub struct PersistentWriter {
    writer: DbWriter,
    backend: Box<dyn StorageBackend>,
    /// `Some` once a non-transient storage failure put the writer in
    /// read-only degraded mode: mutations are refused, the last good
    /// snapshot keeps serving, and a successful checkpoint re-arms.
    degraded: Option<DegradedState>,
    /// Relations mutated since their segments were last written — exactly
    /// the set the next incremental checkpoint must rewrite.  Accumulated
    /// from applied batches (and recovery replay) and cleared only when an
    /// incremental checkpoint commits; a whole-store checkpoint leaves it
    /// alone, because segment reuse is relative to the last *manifest*.
    dirty: BTreeSet<RelKey>,
}

/// The relations a batch can change: fact ops name theirs directly; a rule
/// asserted/retracted *as a fact* (ground, empty body) dirties its head's
/// relation; non-fact rule ops touch none (the manifest rewrites the rules
/// blob every checkpoint anyway).  Marked before application, so an
/// engine-rejected suffix over-marks — a spurious rewrite, never a stale
/// reuse.
fn mark_dirty(dirty: &mut BTreeSet<RelKey>, ops: &[Op]) {
    for op in ops {
        match op {
            Op::AssertFact(fact) | Op::RetractFact(fact) => {
                dirty.insert(rel_key(fact));
            }
            Op::AssertRule(rule) | Op::RetractRule(rule) => {
                if rule.is_fact() {
                    dirty.insert(rel_key(&rule.head));
                }
            }
        }
    }
}

/// Applies `ops` in order through the writer's incremental mutation path.
/// Stops at the first engine error (everything before it stays applied —
/// deterministic, so replay reproduces the same prefix); absent retractions
/// are recorded, not errors.
fn apply_ops(writer: &mut DbWriter, ops: &[Op]) -> (usize, Vec<usize>, Option<EngineError>) {
    let mut applied = 0;
    let mut missing = Vec::new();
    for (index, op) in ops.iter().enumerate() {
        match op {
            Op::AssertFact(fact) => match writer.assert_fact(fact.clone()) {
                Ok(()) => applied += 1,
                Err(error) => return (applied, missing, Some(error)),
            },
            Op::RetractFact(fact) => {
                if writer.retract_fact(fact) {
                    applied += 1;
                } else {
                    missing.push(index);
                }
            }
            Op::AssertRule(rule) => {
                writer.assert_rule(rule.clone());
                applied += 1;
            }
            Op::RetractRule(rule) => {
                if writer.retract_rule(rule) {
                    applied += 1;
                } else {
                    missing.push(index);
                }
            }
        }
    }
    (applied, missing, None)
}

impl PersistentWriter {
    /// Wraps a session with the zero-overhead in-memory backend — behaviour
    /// identical to `db.into_serving()`.
    pub fn in_memory(db: HiLogDb) -> (PersistentWriter, SnapshotHandle) {
        let (writer, handle) = db.into_serving();
        (
            PersistentWriter {
                writer,
                backend: Box::new(InMemory),
                dirty: BTreeSet::new(),
                degraded: None,
            },
            handle,
        )
    }

    /// Opens a durable writer under `config.data_dir`.
    ///
    /// * **Fresh directory** — serve `seed` as-is and immediately write the
    ///   epoch-0 baseline checkpoint (the WAL alone never carries the
    ///   initial program, so recovery is always checkpoint + tail).
    /// * **Existing directory** — rebuild the session from the newest valid
    ///   checkpoint (program, semantics, and — when present — the model,
    ///   seeded warm), replay the WAL tail through the live mutation path,
    ///   and resume publishing at the recovered epoch.  `seed` contributes
    ///   only its evaluation options; its program is ignored in favour of
    ///   the recovered one.
    pub fn open(
        config: &StoreConfig,
        seed: HiLogDb,
    ) -> Result<(PersistentWriter, SnapshotHandle, RecoveryReport), StoreError> {
        let (backend, recovered) = Durable::open(config)?;
        let mut backend = Box::new(backend);
        match recovered.checkpoint {
            None => {
                let (writer, handle) = seed.into_serving();
                let mut this = PersistentWriter {
                    writer,
                    backend,
                    dirty: BTreeSet::new(),
                    degraded: None,
                };
                this.checkpoint()?;
                Ok((this, handle, RecoveryReport::default()))
            }
            Some(ckpt) => {
                let report_epoch = ckpt.epoch;
                let mut builder = HiLogDb::builder()
                    .program(ckpt.program)
                    .semantics(ckpt.semantics)
                    .options(seed.options())
                    .stable_options(seed.stable_options());
                if let Some(model) = ckpt.model {
                    builder = builder.warm_model(model);
                }
                let db = builder.build();
                // Replay strictly after the checkpoint: records at or below
                // its epoch survive only when the process died between
                // checkpointing and truncating the log.
                let (mut writer, handle) = db.into_serving_at(report_epoch);
                let mut replayed_records = 0;
                let mut replayed_ops = 0;
                // Replayed mutations are dirty relative to the recovered
                // recovery point, exactly like live batches would be.
                let mut dirty = BTreeSet::new();
                for record in recovered.wal_records {
                    if record.epoch <= report_epoch {
                        continue;
                    }
                    // Reproduce the live outcome exactly, including an
                    // engine-rejected suffix: the prefix stays applied and
                    // the next record continues, just as the server kept
                    // serving after returning the error to that client.
                    mark_dirty(&mut dirty, &record.ops);
                    let _ = apply_ops(&mut writer, &record.ops);
                    let snapshot = writer.publish();
                    debug_assert_eq!(snapshot.epoch(), record.epoch);
                    replayed_records += 1;
                    replayed_ops += record.ops.len();
                }
                // `into_serving_at` numbered replay publishes from the
                // checkpoint epoch; the records' own epochs are contiguous
                // above it, so the writer now sits at the last record's
                // epoch and new batches extend the same monotone sequence.
                backend.flush()?;
                Ok((
                    PersistentWriter {
                        writer,
                        backend,
                        dirty,
                        degraded: None,
                    },
                    handle,
                    RecoveryReport {
                        recovered: true,
                        checkpoint_epoch: Some(report_epoch),
                        replayed_records,
                        replayed_ops,
                        from_manifest: recovered.from_manifest,
                    },
                ))
            }
        }
    }

    /// Applies one mutation batch: WAL-append (the commit point), apply
    /// through the incremental path, publish.  On an engine error the
    /// already-applied prefix is still published — the same state replay
    /// reproduces — and the error is surfaced.
    ///
    /// In degraded mode the batch is refused up front with
    /// [`StoreError::Degraded`] — nothing is appended or applied.  A WAL
    /// append that still fails after the backend's bounded retries is
    /// treated as non-transient: the batch is *not* applied (the commit
    /// point stays atomic — an unlogged batch must never be visible), the
    /// writer drops into read-only degraded mode, and a later successful
    /// [`Self::checkpoint`] / [`Self::checkpoint_incremental`] re-arms it.
    pub fn apply_batch(&mut self, ops: &[Op]) -> Result<BatchOutcome, StoreError> {
        if let Some(state) = &self.degraded {
            return Err(StoreError::Degraded {
                reason: state.reason.clone(),
                since_epoch: state.since_epoch,
            });
        }
        let epoch = self.writer.epoch() + 1;
        if let Err(error) = self.backend.append_batch(epoch, ops) {
            if matches!(error, StoreError::Io(_)) {
                self.degraded = Some(DegradedState {
                    reason: error.to_string(),
                    since_epoch: self.writer.epoch(),
                });
            }
            return Err(error);
        }
        mark_dirty(&mut self.dirty, ops);
        let (applied, missing, failure) = apply_ops(&mut self.writer, ops);
        let snapshot = self.writer.publish();
        debug_assert_eq!(snapshot.epoch(), epoch);
        match failure {
            Some(error) => Err(StoreError::Engine { applied, error }),
            None => Ok(BatchOutcome {
                epoch,
                applied,
                missing,
            }),
        }
    }

    /// Writes a checkpoint of the current state (truncating the WAL) and
    /// garbage-collects the global symbol pool.  Persisted files use
    /// payload-local symbol ids, so the GC never remaps anything on disk.
    pub fn checkpoint(&mut self) -> Result<CheckpointOutcome, StoreError> {
        let data = CheckpointData {
            epoch: self.writer.epoch(),
            semantics: self.writer.semantics(),
            program: self.writer.program().clone(),
            model: self.writer.cached_model().map(|m| (*m).clone()),
        };
        let path = self.backend.write_checkpoint(&data)?;
        // A checkpoint that reached disk proves storage is writable again:
        // leave degraded mode.
        self.degraded = None;
        let bytes_written = self.backend.stats().last_checkpoint_bytes;
        let symbols_dropped = gc_symbol_pool();
        let live_symbols = symbol_pool_stats().live;
        Ok(CheckpointOutcome {
            epoch: data.epoch,
            path,
            symbols_dropped,
            live_symbols,
            segments_written: 0,
            bytes_written,
        })
    }

    /// Writes an *incremental* checkpoint: fresh segment files only for the
    /// relations dirtied since their segments were last written, a manifest
    /// stitching them together with every clean relation's existing
    /// segment, then truncates the WAL.  The cost scales with the mutation
    /// delta, not the store — at 10^6 facts spread over many relations a
    /// small update checkpoints orders of magnitude faster than
    /// [`Self::checkpoint`].  The model is not persisted (it rebuilds
    /// lazily); use [`Self::checkpoint`] for a warm-model recovery point.
    pub fn checkpoint_incremental(&mut self) -> Result<CheckpointOutcome, StoreError> {
        let data = CheckpointData {
            epoch: self.writer.epoch(),
            semantics: self.writer.semantics(),
            program: self.writer.program().clone(),
            model: None,
        };
        let outcome = self.backend.write_incremental(&data, &self.dirty)?;
        self.degraded = None;
        self.dirty.clear();
        let symbols_dropped = gc_symbol_pool();
        let live_symbols = symbol_pool_stats().live;
        Ok(CheckpointOutcome {
            epoch: data.epoch,
            path: outcome.path,
            symbols_dropped,
            live_symbols,
            segments_written: outcome.segments_written,
            bytes_written: outcome.bytes_written,
        })
    }

    /// Forces buffered WAL records to stable storage.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        self.backend.flush()
    }

    /// Graceful shutdown: flush the WAL and, when `checkpoint` is set, write
    /// a final checkpoint so the next boot skips replay entirely.
    pub fn shutdown(&mut self, checkpoint: bool) -> Result<(), StoreError> {
        self.backend.flush()?;
        if checkpoint {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Storage counters for `GET /stats`.
    pub fn storage_stats(&self) -> StorageStats {
        self.backend.stats()
    }

    /// `Some` while the writer is in read-only degraded mode.
    pub fn degraded(&self) -> Option<&DegradedState> {
        self.degraded.as_ref()
    }

    /// Epoch of the most recently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.writer.epoch()
    }

    /// The writer's current program.
    pub fn program(&self) -> &hilog_core::Program {
        self.writer.program()
    }

    /// The semantics queries are answered under.
    pub fn semantics(&self) -> Semantics {
        self.writer.semantics()
    }

    /// A fresh reader endpoint.
    pub fn handle(&self) -> SnapshotHandle {
        self.writer.handle()
    }

    /// The currently published snapshot.
    pub fn current(&self) -> Arc<DbSnapshot> {
        self.writer.current()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilog_syntax::{parse_program, parse_query, parse_term};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("hilog-pw-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn game_db() -> HiLogDb {
        HiLogDb::new(
            parse_program(
                "winning(X) :- move(X, Y), not winning(Y).\n\
                 move(a, b). move(b, c).",
            )
            .unwrap(),
        )
    }

    fn assert_true(handle: &SnapshotHandle, query: &str) {
        let result = handle
            .current()
            .query(&parse_query(query).unwrap())
            .unwrap();
        assert!(result.is_true(), "{query} should hold");
    }

    #[test]
    fn fresh_open_writes_baseline_checkpoint() {
        let dir = temp_dir("baseline");
        let config = StoreConfig::new(&dir);
        let (writer, handle, report) = PersistentWriter::open(&config, game_db()).unwrap();
        assert!(!report.recovered);
        assert_eq!(writer.epoch(), 0);
        assert_true(&handle, "?- winning(b).");
        let stats = writer.storage_stats();
        assert!(stats.durable);
        assert_eq!(stats.last_checkpoint_epoch, Some(0));
        assert_eq!(stats.wal_records, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mutate_drop_reopen_recovers_exactly() {
        let dir = temp_dir("recover");
        let config = StoreConfig::new(&dir);
        {
            let (mut writer, handle, _) = PersistentWriter::open(&config, game_db()).unwrap();
            writer
                .apply_batch(&[Op::AssertFact(parse_term("move(c, d)").unwrap())])
                .unwrap();
            writer
                .apply_batch(&[
                    Op::RetractFact(parse_term("move(a, b)").unwrap()),
                    Op::AssertFact(parse_term("move(a, c)").unwrap()),
                ])
                .unwrap();
            assert_eq!(writer.epoch(), 2);
            assert_true(&handle, "?- winning(c).");
            // Simulated crash: writer dropped, no checkpoint.
        }
        let (writer, handle, report) = PersistentWriter::open(&config, game_db()).unwrap();
        assert!(report.recovered);
        assert_eq!(report.checkpoint_epoch, Some(0));
        assert_eq!(report.replayed_records, 2);
        assert_eq!(report.replayed_ops, 3);
        assert_eq!(writer.epoch(), 2);
        // One recovered base fact and one derived atom (c moves to the dead
        // end d, so c is winning).
        assert_true(&handle, "?- move(c, d).");
        assert_true(&handle, "?- winning(c).");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_truncates_wal_and_survives_reopen() {
        let dir = temp_dir("ckpt");
        let config = StoreConfig::new(&dir);
        {
            let (mut writer, _handle, _) = PersistentWriter::open(&config, game_db()).unwrap();
            writer
                .apply_batch(&[Op::AssertFact(parse_term("move(c, d)").unwrap())])
                .unwrap();
            let outcome = writer.checkpoint().unwrap();
            assert_eq!(outcome.epoch, 1);
            assert!(outcome.path.is_some());
            let stats = writer.storage_stats();
            assert_eq!(stats.wal_records, 0);
            assert_eq!(stats.last_checkpoint_epoch, Some(1));
        }
        let (writer, handle, report) = PersistentWriter::open(&config, game_db()).unwrap();
        assert!(report.recovered);
        assert_eq!(report.checkpoint_epoch, Some(1));
        assert_eq!(report.replayed_records, 0);
        assert_eq!(writer.epoch(), 1);
        assert_true(&handle, "?- move(c, d).");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_restores_model_warm() {
        let dir = temp_dir("warm");
        let config = StoreConfig::new(&dir);
        {
            let (mut writer, _handle, _) = PersistentWriter::open(&config, game_db()).unwrap();
            // Warm the writer-side model so the checkpoint persists it.
            writer.writer.db().model().unwrap();
            let _ = writer.checkpoint().unwrap();
        }
        let (_writer, handle, report) = PersistentWriter::open(&config, game_db()).unwrap();
        assert!(report.recovered);
        // A variable in predicate position forces the full-model route; the
        // model must come back warm from the checkpoint — answered without
        // rebuilding (and without any grounding pass).
        let result = handle
            .current()
            .query(&parse_query("?- P(a, b).").unwrap())
            .unwrap();
        assert_eq!(result.answers.len(), 1); // P = move
        assert_eq!(result.stats.model_source, hilog_engine::ModelSource::Cached);
        assert_eq!(result.stats.groundings, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rules_and_retract_rules_recover() {
        let dir = temp_dir("rules");
        let config = StoreConfig::new(&dir);
        let rule = parse_program("reach(X, Y) :- move(X, Y).")
            .unwrap()
            .rules
            .remove(0);
        {
            let (mut writer, _, _) = PersistentWriter::open(&config, game_db()).unwrap();
            writer.apply_batch(&[Op::AssertRule(rule.clone())]).unwrap();
            writer
                .apply_batch(&[Op::RetractFact(parse_term("move(b, c)").unwrap())])
                .unwrap();
        }
        let (writer, handle, _) = PersistentWriter::open(&config, game_db()).unwrap();
        assert_true(&handle, "?- reach(a, b).");
        let result = handle
            .current()
            .query(&parse_query("?- reach(b, c).").unwrap())
            .unwrap();
        assert!(!result.is_true());
        assert_eq!(
            writer.program().rules.len(),
            game_db().program().rules.len()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_retractions_are_reported_and_replay_identically() {
        let dir = temp_dir("missing");
        let config = StoreConfig::new(&dir);
        {
            let (mut writer, _, _) = PersistentWriter::open(&config, game_db()).unwrap();
            let outcome = writer
                .apply_batch(&[
                    Op::RetractFact(parse_term("move(x, y)").unwrap()),
                    Op::AssertFact(parse_term("move(c, d)").unwrap()),
                ])
                .unwrap();
            assert_eq!(outcome.missing, vec![0]);
            assert_eq!(outcome.applied, 1);
        }
        let (writer, handle, _) = PersistentWriter::open(&config, game_db()).unwrap();
        assert_eq!(writer.epoch(), 1);
        assert_true(&handle, "?- move(c, d).");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn incremental_checkpoint_rewrites_only_dirty_relations() {
        let dir = temp_dir("incr");
        let config = StoreConfig::new(&dir);
        {
            let (mut writer, _handle, _) = PersistentWriter::open(&config, game_db()).unwrap();
            writer
                .apply_batch(&[Op::AssertFact(parse_term("colour(a, red)").unwrap())])
                .unwrap();
            // First incremental checkpoint: no previous manifest, so every
            // relation (move, colour) gets a segment.
            let first = writer.checkpoint_incremental().unwrap();
            assert_eq!(first.segments_written, 2);
            assert!(first.path.is_some());
            assert_eq!(writer.storage_stats().wal_records, 0, "WAL truncated");
            assert_eq!(writer.storage_stats().manifest_segments, 2);
            // Dirty only `colour`: the move segment must be reused.
            writer
                .apply_batch(&[Op::AssertFact(parse_term("colour(b, blue)").unwrap())])
                .unwrap();
            let second = writer.checkpoint_incremental().unwrap();
            assert_eq!(
                second.segments_written, 1,
                "clean relations reuse their segments"
            );
            assert!(
                second.bytes_written < first.bytes_written,
                "the incremental delta must shrink with the dirty set"
            );
            let stats = writer.storage_stats();
            assert_eq!(stats.last_checkpoint_segments, 1);
            assert_eq!(stats.last_checkpoint_bytes, second.bytes_written);
        }
        // Recovery loads the manifest + segments (model rebuilds lazily).
        let (writer, handle, report) = PersistentWriter::open(&config, game_db()).unwrap();
        assert!(report.recovered);
        assert!(report.from_manifest);
        assert_eq!(report.replayed_records, 0);
        assert_eq!(writer.epoch(), 2);
        assert_true(&handle, "?- colour(b, blue).");
        assert_true(&handle, "?- winning(b).");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_after_incremental_checkpoint_marks_relations_dirty() {
        let dir = temp_dir("incr-replay");
        let config = StoreConfig::new(&dir);
        {
            let (mut writer, _handle, _) = PersistentWriter::open(&config, game_db()).unwrap();
            writer
                .apply_batch(&[Op::AssertFact(parse_term("colour(a, red)").unwrap())])
                .unwrap();
            writer.checkpoint_incremental().unwrap();
            // Mutate after the checkpoint, then "crash" without another one.
            writer
                .apply_batch(&[Op::AssertFact(parse_term("move(c, d)").unwrap())])
                .unwrap();
        }
        let (mut writer, handle, report) = PersistentWriter::open(&config, game_db()).unwrap();
        assert!(report.from_manifest);
        assert_eq!(report.replayed_records, 1);
        // The replayed `move` mutation must invalidate the reused segment:
        // this checkpoint has to rewrite it, or recovery below would lose
        // the replayed fact.
        let outcome = writer.checkpoint_incremental().unwrap();
        assert_eq!(outcome.segments_written, 1);
        drop(writer);
        drop(handle);
        let (_writer, handle, _) = PersistentWriter::open(&config, game_db()).unwrap();
        assert_true(&handle, "?- move(c, d).");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_transient_append_failure_degrades_and_checkpoint_rearms() {
        use crate::io::{FaultIo, RetryPolicy};
        let dir = temp_dir("degraded");
        let io = FaultIo::over_real();
        let config = StoreConfig::new(&dir)
            .io(std::sync::Arc::new(io.clone()))
            .retry(RetryPolicy::none());
        let (mut writer, handle, _) = PersistentWriter::open(&config, game_db()).unwrap();
        writer
            .apply_batch(&[Op::AssertFact(parse_term("move(c, d)").unwrap())])
            .unwrap();
        let epoch = writer.epoch();
        // The disk dies mid-serving: the next batch must fail, not apply,
        // and drop the writer into read-only degraded mode.
        io.fail_from(io.ops());
        let err = writer
            .apply_batch(&[Op::AssertFact(parse_term("move(d, e)").unwrap())])
            .unwrap_err();
        assert!(
            matches!(err, StoreError::Io(_)),
            "first failure is the I/O error"
        );
        assert_eq!(writer.epoch(), epoch, "unlogged batch was not applied");
        let state = writer.degraded().expect("writer is degraded").clone();
        assert_eq!(state.since_epoch, epoch);
        // Further mutations are refused up front with the structured error.
        let err = writer
            .apply_batch(&[Op::AssertFact(parse_term("move(d, e)").unwrap())])
            .unwrap_err();
        assert!(matches!(err, StoreError::Degraded { .. }));
        // Queries keep answering from the last good snapshot.
        assert_true(&handle, "?- winning(c).");
        // Operator frees space; a checkpoint that reaches disk re-arms.
        io.heal();
        writer.checkpoint().unwrap();
        assert!(writer.degraded().is_none(), "successful checkpoint re-arms");
        writer
            .apply_batch(&[Op::AssertFact(parse_term("move(d, e)").unwrap())])
            .unwrap();
        assert_true(&handle, "?- move(d, e).");
        // The whole history survives a reopen with a clean backend.
        drop(writer);
        drop(handle);
        let (_writer, handle, report) =
            PersistentWriter::open(&StoreConfig::new(&dir), game_db()).unwrap();
        assert!(report.recovered);
        assert_true(&handle, "?- move(c, d).");
        assert_true(&handle, "?- move(d, e).");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_fault_is_absorbed_by_retry_and_counted() {
        use crate::io::FaultIo;
        let dir = temp_dir("retry");
        let io = FaultIo::over_real();
        let config = StoreConfig::new(&dir).io(std::sync::Arc::new(io.clone()));
        let (mut writer, handle, _) = PersistentWriter::open(&config, game_db()).unwrap();
        // One-shot fault on the next WAL write: the default retry policy
        // must absorb it without the caller noticing.
        io.fail_nth(io.ops());
        writer
            .apply_batch(&[Op::AssertFact(parse_term("move(c, d)").unwrap())])
            .unwrap();
        assert!(writer.degraded().is_none());
        assert_true(&handle, "?- winning(c).");
        let stats = writer.storage_stats();
        assert!(stats.io_retries >= 1, "the retry was counted");
        assert!(stats.injected_faults >= 1, "the fault was counted");
        assert!(stats.io_ops > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn in_memory_backend_reports_not_durable() {
        let (mut writer, handle) = PersistentWriter::in_memory(game_db());
        writer
            .apply_batch(&[Op::AssertFact(parse_term("move(c, d)").unwrap())])
            .unwrap();
        assert_true(&handle, "?- winning(c).");
        let stats = writer.storage_stats();
        assert!(!stats.durable);
        let outcome = writer.checkpoint().unwrap();
        assert!(outcome.path.is_none());
    }
}
