//! The write-ahead log.
//!
//! One file (`wal.log` inside the data dir) of framed records:
//!
//! ```text
//! [payload len: u32 LE][crc32(payload): u32 LE][payload bytes]
//! ```
//!
//! where the payload is an [`crate::ops::encode_batch`] encoding — the epoch
//! the batch publishes plus its operations.  Records are appended *before*
//! the batch is applied, so a record's presence is the commit point: after a
//! crash, every fully framed, checksum-valid record replays; a torn final
//! record (incomplete frame or checksum mismatch — the signature of dying
//! mid-`write`) is truncated away on open, which is exactly the batch whose
//! client never got an acknowledgement at `PerBatch` fsync.

use crate::error::StoreError;
use crate::io::{OpenMode, StoreFile, StoreIo};
use crate::ops::{decode_batch, encode_batch, Op};
use hilog_core::codec::crc32;
use std::io::SeekFrom;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Name of the log file inside a data dir.
pub const WAL_FILE: &str = "wal.log";

/// Frames larger than this are treated as torn tails rather than attempted
/// allocations — a length word of garbage must not OOM recovery.
const MAX_RECORD_BYTES: u32 = 1 << 30;

/// When appended records are forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every appended batch: an acknowledged mutation is
    /// durable, at the cost of one disk flush per write request.
    PerBatch,
    /// `fsync` at most once per interval: batches inside the window are
    /// buffered by the OS, so a crash can lose the last ≤ interval of
    /// *acknowledged* writes (never corrupting the log — the tail truncates
    /// cleanly).  The serving benchmark runs this at ~10 ms.
    Interval(Duration),
    /// Never `fsync` explicitly; durability is whatever the OS flushes on
    /// its own.  For tests and benchmarks.
    Never,
}

/// One recovered log record: the epoch its batch published and the
/// operations, in application order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The epoch this batch published (checkpoint epochs + WAL epochs are
    /// one monotone sequence).
    pub epoch: u64,
    /// The batch, in application order.
    pub ops: Vec<Op>,
}

/// An open write-ahead log positioned for appending.
#[derive(Debug)]
pub struct Wal {
    file: Box<dyn StoreFile>,
    path: PathBuf,
    records: usize,
    bytes: u64,
    policy: FsyncPolicy,
    last_sync: Instant,
    /// Appends since the last explicit fsync (so `flush` can skip the
    /// syscall when nothing is pending).
    unsynced: usize,
    /// Set when a failed append could not roll its partial frame back: the
    /// on-disk tail may be torn, so further appends are refused until
    /// [`Wal::truncate`] (a checkpoint) resets the log.  Recovery on reopen
    /// truncates the torn tail the same way it handles a crash.
    poisoned: bool,
}

impl Wal {
    /// Opens (creating if absent) the log at `path` through `io`, scanning
    /// existing records and truncating a torn tail.  Returns the log
    /// positioned for appending plus every valid record, oldest first.
    pub fn open(
        io: &dyn StoreIo,
        path: impl Into<PathBuf>,
        policy: FsyncPolicy,
    ) -> Result<(Wal, Vec<WalRecord>), StoreError> {
        let path = path.into();
        let mut file = io.open(&path, OpenMode::ReadWrite)?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)?;

        let mut records = Vec::new();
        let mut offset = 0usize;
        loop {
            let rest = &data[offset..];
            if rest.is_empty() {
                break;
            }
            // Anything that fails to frame or checksum from here on is the
            // torn tail; only a *fully* valid record advances the offset.
            let Some(frame) = rest.get(..8) else { break };
            let len = u32::from_le_bytes(frame[..4].try_into().expect("4 bytes"));
            let crc = u32::from_le_bytes(frame[4..].try_into().expect("4 bytes"));
            // `encode_batch` never produces an empty payload, but a zero
            // *gap* (e.g. a write past a truncated file's end) frames as
            // len = 0, crc = 0 — and crc32 of nothing is 0, so it would
            // "verify".  Zeros are a tear, not a record.
            if len == 0 || len > MAX_RECORD_BYTES {
                break;
            }
            let Some(payload) = rest.get(8..8 + len as usize) else {
                break;
            };
            if crc32(payload) != crc {
                break;
            }
            // A checksummed payload that still fails to decode is not a torn
            // write — it is a format bug or targeted corruption; surface it
            // instead of silently dropping committed mutations.
            let (epoch, ops) = decode_batch(payload)?;
            records.push(WalRecord { epoch, ops });
            offset += 8 + len as usize;
        }
        if offset < data.len() {
            // Drop the torn tail so the next append starts a clean frame.
            file.set_len(offset as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(offset as u64))?;
        Ok((
            Wal {
                file,
                path,
                records: records.len(),
                bytes: offset as u64,
                policy,
                last_sync: Instant::now(),
                unsynced: 0,
                poisoned: false,
            },
            records,
        ))
    }

    /// Appends one batch as a single framed record and applies the fsync
    /// policy.  On return the record is in the file (durably so under
    /// [`FsyncPolicy::PerBatch`]).
    ///
    /// On failure the partial frame is rolled back (`set_len` to the
    /// pre-append length) so the log still ends on a record boundary and
    /// the append can simply be retried; if the rollback itself fails the
    /// log is poisoned — appends are refused until [`Wal::truncate`]
    /// resets it (or a reopen truncates the torn tail).  Either way the
    /// batch was *not* committed: the caller must not apply it.
    pub fn append(&mut self, epoch: u64, ops: &[Op]) -> Result<(), StoreError> {
        if self.poisoned {
            return Err(StoreError::Io(std::io::Error::other(
                "write-ahead log poisoned by an earlier failed append; \
                 a checkpoint (which truncates the log) resets it",
            )));
        }
        let payload = encode_batch(epoch, ops);
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        // One write_all per record: a crash (or injected fault) mid-call
        // tears at most this frame.  A same-process failure rolls back
        // below; a crash leaves the tear for `open` to truncate.
        let pre_bytes = self.bytes;
        if let Err(error) = self.file.write_all(&frame) {
            self.roll_back_to(pre_bytes);
            return Err(StoreError::Io(error));
        }
        self.records += 1;
        self.bytes += frame.len() as u64;
        self.unsynced += 1;
        // The append commits only once the policy's sync ran: rolling back
        // after a failed fsync keeps "acknowledged implies durable" under
        // PerBatch (the record may or may not have reached the platter —
        // removing it makes the answer deterministic either way).
        let sync_result = match self.policy {
            FsyncPolicy::PerBatch => self.sync(),
            FsyncPolicy::Interval(window) => {
                if self.last_sync.elapsed() >= window {
                    self.sync()
                } else {
                    Ok(())
                }
            }
            FsyncPolicy::Never => Ok(()),
        };
        if let Err(error) = sync_result {
            self.records -= 1;
            self.bytes = pre_bytes;
            self.unsynced = self.unsynced.saturating_sub(1);
            self.roll_back_to(pre_bytes);
            return Err(error);
        }
        Ok(())
    }

    /// Restores a clean record boundary at `offset` after a failed append;
    /// poisons the log if even that fails (the tail may be torn).
    fn roll_back_to(&mut self, offset: u64) {
        let rolled_back = self
            .file
            .set_len(offset)
            .and_then(|()| self.file.seek(SeekFrom::Start(offset)))
            .is_ok();
        if !rolled_back {
            self.poisoned = true;
        }
    }

    /// Forces everything appended so far to stable storage (regardless of
    /// policy).  Graceful shutdown calls this.
    pub fn flush(&mut self) -> Result<(), StoreError> {
        if self.unsynced > 0 {
            self.sync()?;
        }
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        self.file.sync_data()?;
        self.last_sync = Instant::now();
        self.unsynced = 0;
        Ok(())
    }

    /// Empties the log — called after a checkpoint makes its records
    /// redundant.  Durable before return.  Also clears a poisoned flag: an
    /// empty log trivially ends on a record boundary again.
    ///
    /// A *partial* failure (say `set_len` ran but the seek did not) leaves
    /// the file's length and the handle's position disagreeing — an append
    /// would then write past the end and zero-fill the gap.  So any failure
    /// poisons the log; truncation is idempotent, callers simply retry.
    pub fn truncate(&mut self) -> Result<(), StoreError> {
        if let Err(error) = self.truncate_file() {
            self.poisoned = true;
            return Err(error);
        }
        self.records = 0;
        self.bytes = 0;
        self.unsynced = 0;
        self.last_sync = Instant::now();
        self.poisoned = false;
        Ok(())
    }

    fn truncate_file(&mut self) -> Result<(), StoreError> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_data()?;
        Ok(())
    }

    /// `true` when a failed append could not be rolled back and the log is
    /// refusing writes until truncated.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Records currently in the log (recovered + appended this process).
    pub fn records(&self) -> usize {
        self.records
    }

    /// Bytes currently in the log.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The log file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{FaultIo, FaultPlan, RealIo};
    use hilog_syntax::parse_term;
    use std::fs::OpenOptions;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn real() -> RealIo {
        RealIo::new()
    }

    fn temp_path(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("hilog-wal-{tag}-{}-{n}.log", std::process::id()))
    }

    fn fact(s: &str) -> Op {
        Op::AssertFact(parse_term(s).unwrap())
    }

    #[test]
    fn append_close_reopen_replays_in_order() {
        let path = temp_path("roundtrip");
        {
            let (mut wal, recovered) = Wal::open(&real(), &path, FsyncPolicy::PerBatch).unwrap();
            assert!(recovered.is_empty());
            wal.append(1, &[fact("p(a)"), fact("p(b)")]).unwrap();
            wal.append(2, &[fact("q(c)")]).unwrap();
            assert_eq!(wal.records(), 2);
        }
        let (wal, recovered) = Wal::open(&real(), &path, FsyncPolicy::PerBatch).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[0].epoch, 1);
        assert_eq!(recovered[0].ops.len(), 2);
        assert_eq!(recovered[1].epoch, 2);
        assert_eq!(wal.records(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_at_every_cut_point() {
        let path = temp_path("torn");
        {
            let (mut wal, _) = Wal::open(&real(), &path, FsyncPolicy::Never).unwrap();
            wal.append(1, &[fact("p(a)")]).unwrap();
            wal.append(2, &[fact("q(b)"), fact("q(c)")]).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        // Find where record 1 ends so we know which cuts lose which records.
        let rec1_len = u32::from_le_bytes(full[..4].try_into().unwrap()) as usize + 8;
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (wal, recovered) = Wal::open(&real(), &path, FsyncPolicy::Never).unwrap();
            let expect = if cut >= full.len() {
                2
            } else if cut >= rec1_len {
                1
            } else {
                0
            };
            assert_eq!(recovered.len(), expect, "cut at {cut}");
            // The torn bytes are gone: the file ends on a record boundary.
            let survived: u64 = if expect == 0 { 0 } else { rec1_len as u64 };
            assert_eq!(wal.bytes(), survived, "cut at {cut}");
            drop(wal);
            assert_eq!(
                std::fs::metadata(&path).unwrap().len(),
                survived,
                "cut at {cut}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_crc_cuts_the_log_there() {
        let path = temp_path("crc");
        {
            let (mut wal, _) = Wal::open(&real(), &path, FsyncPolicy::Never).unwrap();
            wal.append(1, &[fact("p(a)")]).unwrap();
            wal.append(2, &[fact("p(b)")]).unwrap();
        }
        let mut data = std::fs::read(&path).unwrap();
        let rec1_len = u32::from_le_bytes(data[..4].try_into().unwrap()) as usize + 8;
        // Flip one payload byte of record 2.
        data[rec1_len + 8] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let (_, recovered) = Wal::open(&real(), &path, FsyncPolicy::Never).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].epoch, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_after_torn_recovery_frames_cleanly() {
        let path = temp_path("resume");
        {
            let (mut wal, _) = Wal::open(&real(), &path, FsyncPolicy::Never).unwrap();
            wal.append(1, &[fact("p(a)")]).unwrap();
        }
        // Tear: append garbage half-frame.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0x55; 5]).unwrap();
        }
        {
            let (mut wal, recovered) = Wal::open(&real(), &path, FsyncPolicy::Never).unwrap();
            assert_eq!(recovered.len(), 1);
            wal.append(2, &[fact("p(b)")]).unwrap();
        }
        let (_, recovered) = Wal::open(&real(), &path, FsyncPolicy::Never).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[1].epoch, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncate_empties_the_log() {
        let path = temp_path("truncate");
        let (mut wal, _) = Wal::open(&real(), &path, FsyncPolicy::Never).unwrap();
        wal.append(1, &[fact("p(a)")]).unwrap();
        wal.truncate().unwrap();
        assert_eq!(wal.records(), 0);
        assert_eq!(wal.bytes(), 0);
        wal.append(2, &[fact("p(b)")]).unwrap();
        drop(wal);
        let (_, recovered) = Wal::open(&real(), &path, FsyncPolicy::Never).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].epoch, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_append_rolls_back_and_the_next_append_succeeds() {
        let path = temp_path("fault-rollback");
        let io = FaultIo::over_real();
        let (mut wal, _) = Wal::open(&io, &path, FsyncPolicy::Never).unwrap();
        wal.append(1, &[fact("p(a)")]).unwrap();
        let (records, bytes) = (wal.records(), wal.bytes());
        // One-shot fault on the next op (the frame write); the rollback's
        // set_len/seek run after the window closes and succeed.
        io.fail_nth(io.ops());
        assert!(wal.append(2, &[fact("p(b)")]).is_err());
        assert_eq!(wal.records(), records, "failed append left no record");
        assert_eq!(wal.bytes(), bytes, "partial frame rolled back");
        assert!(!wal.poisoned());
        wal.append(2, &[fact("p(b)")]).unwrap();
        drop(wal);
        let (_, recovered) = Wal::open(&real(), &path, FsyncPolicy::Never).unwrap();
        assert_eq!(recovered.len(), 2, "only acknowledged appends replay");
        assert_eq!(recovered[1].epoch, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn poisoned_log_refuses_appends_until_truncate() {
        let path = temp_path("fault-poison");
        let io = FaultIo::over_real();
        let (mut wal, _) = Wal::open(&io, &path, FsyncPolicy::Never).unwrap();
        wal.append(1, &[fact("p(a)")]).unwrap();
        // The disk dies: write fails AND the rollback's set_len fails.
        io.fail_from(io.ops());
        assert!(wal.append(2, &[fact("p(b)")]).is_err());
        assert!(wal.poisoned(), "failed rollback must poison the log");
        io.heal();
        assert!(
            wal.append(3, &[fact("p(c)")]).is_err(),
            "poisoned log refuses appends even after the disk recovers"
        );
        wal.truncate().unwrap();
        assert!(!wal.poisoned(), "truncate (a checkpoint) resets the log");
        wal.append(1, &[fact("p(d)")]).unwrap();
        drop(wal);
        let (_, recovered) = Wal::open(&real(), &path, FsyncPolicy::Never).unwrap();
        assert_eq!(recovered.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn partially_failed_truncate_poisons_until_a_clean_one() {
        let path = temp_path("fault-truncate");
        let io = FaultIo::over_real();
        let (mut wal, _) = Wal::open(&io, &path, FsyncPolicy::Never).unwrap();
        wal.append(1, &[fact("p(a)")]).unwrap();
        // Fault the seek *inside* truncate: set_len already emptied the
        // file, so the handle's position and the file length disagree —
        // an append now would zero-fill the gap.
        io.fail_nth(io.ops() + 1);
        assert!(wal.truncate().is_err());
        assert!(wal.poisoned(), "partial truncate must poison the log");
        assert!(wal.append(2, &[fact("p(b)")]).is_err());
        wal.truncate().unwrap();
        assert!(!wal.poisoned());
        wal.append(3, &[fact("p(c)")]).unwrap();
        drop(wal);
        let (_, recovered) = Wal::open(&real(), &path, FsyncPolicy::Never).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].epoch, 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zero_gap_scans_as_a_torn_tail_not_an_empty_record() {
        let path = temp_path("zero-gap");
        {
            let (mut wal, _) = Wal::open(&real(), &path, FsyncPolicy::Never).unwrap();
            wal.append(1, &[fact("p(a)")]).unwrap();
        }
        let good = std::fs::read(&path).unwrap();
        // A zero gap frames as len = 0, crc = 0 — and crc32 of an empty
        // payload is 0, so without the len == 0 guard it would "verify"
        // and then fail to decode.  It must scan as a tear instead.
        let mut data = vec![0u8; 16];
        data.extend_from_slice(&good);
        std::fs::write(&path, &data).unwrap();
        let (wal, recovered) = Wal::open(&real(), &path, FsyncPolicy::Never).unwrap();
        assert!(recovered.is_empty(), "zeros are a tear, not records");
        assert_eq!(wal.bytes(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_fsync_under_per_batch_rolls_the_record_back() {
        let path = temp_path("fault-fsync");
        let io = FaultIo::over_real();
        let (mut wal, _) = Wal::open(&io, &path, FsyncPolicy::PerBatch).unwrap();
        wal.append(1, &[fact("p(a)")]).unwrap();
        let bytes = wal.bytes();
        // Fault only the fsync: the frame lands but durability is refused,
        // so the append must un-acknowledge it (acknowledged ⇒ durable).
        io.set_plan(FaultPlan {
            fail_from: Some(io.ops() + 1),
            fail_count: 1,
            ..FaultPlan::default()
        });
        assert!(wal.append(2, &[fact("p(b)")]).is_err());
        assert_eq!(wal.bytes(), bytes, "unacknowledged record rolled back");
        wal.append(2, &[fact("p(b)")]).unwrap();
        drop(wal);
        let (_, recovered) = Wal::open(&real(), &path, FsyncPolicy::Never).unwrap();
        assert_eq!(recovered.len(), 2);
        std::fs::remove_file(&path).ok();
    }
}
