//! Tokeniser for the concrete HiLog syntax.
//!
//! The syntax is Prolog-like.  Variables start with an upper-case letter or
//! `_`; symbols are lower-case identifiers or quoted atoms; `:-` separates a
//! rule head from its body; `?-` introduces a query; `not` negates a body
//! literal; `%` starts a line comment.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// A symbol (lower-case identifier or quoted atom).
    Symbol(String),
    /// A variable (upper-case identifier); `_` becomes an anonymous variable.
    Variable(String),
    /// An integer literal.
    Integer(i64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `|`
    Pipe,
    /// `.` (clause terminator)
    Dot,
    /// `:-`
    Arrow,
    /// `?-`
    QueryArrow,
    /// `not` keyword (also accepts `\+`).
    Not,
    /// `is`
    Is,
    /// `=`
    Eq,
    /// `\=`
    Neq,
    /// `=:=`
    ArithEq,
    /// `=\=`
    ArithNeq,
    /// `<`
    Lt,
    /// `<=` (also accepts `=<`)
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `mod`
    Mod,
    /// `div`
    Div,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Symbol(s) => write!(f, "{s}"),
            Token::Variable(v) => write!(f, "{v}"),
            Token::Integer(i) => write!(f, "{i}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Comma => write!(f, ","),
            Token::Pipe => write!(f, "|"),
            Token::Dot => write!(f, "."),
            Token::Arrow => write!(f, ":-"),
            Token::QueryArrow => write!(f, "?-"),
            Token::Not => write!(f, "not"),
            Token::Is => write!(f, "is"),
            Token::Eq => write!(f, "="),
            Token::Neq => write!(f, "\\="),
            Token::ArithEq => write!(f, "=:="),
            Token::ArithNeq => write!(f, "=\\="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Mod => write!(f, "mod"),
            Token::Div => write!(f, "div"),
        }
    }
}

/// A token together with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

/// A lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable message.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lexical error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for LexError {}

/// Tokenises the input.
pub fn tokenize(input: &str) -> Result<Vec<Spanned>, LexError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut column = 1usize;

    let err = |message: String, line: usize, column: usize| LexError {
        message,
        line,
        column,
    };

    while i < chars.len() {
        let c = chars[i];
        let (tok_line, tok_col) = (line, column);
        let advance = |i: &mut usize, line: &mut usize, column: &mut usize| {
            if chars[*i] == '\n' {
                *line += 1;
                *column = 1;
            } else {
                *column += 1;
            }
            *i += 1;
        };

        match c {
            ' ' | '\t' | '\r' | '\n' => {
                advance(&mut i, &mut line, &mut column);
            }
            '%' => {
                while i < chars.len() && chars[i] != '\n' {
                    advance(&mut i, &mut line, &mut column);
                }
            }
            '(' => {
                tokens.push(Spanned {
                    token: Token::LParen,
                    line: tok_line,
                    column: tok_col,
                });
                advance(&mut i, &mut line, &mut column);
            }
            ')' => {
                tokens.push(Spanned {
                    token: Token::RParen,
                    line: tok_line,
                    column: tok_col,
                });
                advance(&mut i, &mut line, &mut column);
            }
            '[' => {
                tokens.push(Spanned {
                    token: Token::LBracket,
                    line: tok_line,
                    column: tok_col,
                });
                advance(&mut i, &mut line, &mut column);
            }
            ']' => {
                tokens.push(Spanned {
                    token: Token::RBracket,
                    line: tok_line,
                    column: tok_col,
                });
                advance(&mut i, &mut line, &mut column);
            }
            ',' => {
                tokens.push(Spanned {
                    token: Token::Comma,
                    line: tok_line,
                    column: tok_col,
                });
                advance(&mut i, &mut line, &mut column);
            }
            '|' => {
                tokens.push(Spanned {
                    token: Token::Pipe,
                    line: tok_line,
                    column: tok_col,
                });
                advance(&mut i, &mut line, &mut column);
            }
            '.' => {
                tokens.push(Spanned {
                    token: Token::Dot,
                    line: tok_line,
                    column: tok_col,
                });
                advance(&mut i, &mut line, &mut column);
            }
            '+' => {
                tokens.push(Spanned {
                    token: Token::Plus,
                    line: tok_line,
                    column: tok_col,
                });
                advance(&mut i, &mut line, &mut column);
            }
            '*' => {
                tokens.push(Spanned {
                    token: Token::Star,
                    line: tok_line,
                    column: tok_col,
                });
                advance(&mut i, &mut line, &mut column);
            }
            '/' => {
                tokens.push(Spanned {
                    token: Token::Slash,
                    line: tok_line,
                    column: tok_col,
                });
                advance(&mut i, &mut line, &mut column);
            }
            ':' => {
                if i + 1 < chars.len() && chars[i + 1] == '-' {
                    tokens.push(Spanned {
                        token: Token::Arrow,
                        line: tok_line,
                        column: tok_col,
                    });
                    advance(&mut i, &mut line, &mut column);
                    advance(&mut i, &mut line, &mut column);
                } else {
                    return Err(err("expected `:-`".into(), tok_line, tok_col));
                }
            }
            '?' => {
                if i + 1 < chars.len() && chars[i + 1] == '-' {
                    tokens.push(Spanned {
                        token: Token::QueryArrow,
                        line: tok_line,
                        column: tok_col,
                    });
                    advance(&mut i, &mut line, &mut column);
                    advance(&mut i, &mut line, &mut column);
                } else {
                    return Err(err("expected `?-`".into(), tok_line, tok_col));
                }
            }
            '\\' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    tokens.push(Spanned {
                        token: Token::Neq,
                        line: tok_line,
                        column: tok_col,
                    });
                    advance(&mut i, &mut line, &mut column);
                    advance(&mut i, &mut line, &mut column);
                } else if i + 1 < chars.len() && chars[i + 1] == '+' {
                    tokens.push(Spanned {
                        token: Token::Not,
                        line: tok_line,
                        column: tok_col,
                    });
                    advance(&mut i, &mut line, &mut column);
                    advance(&mut i, &mut line, &mut column);
                } else {
                    return Err(err("expected `\\=` or `\\+`".into(), tok_line, tok_col));
                }
            }
            '=' => {
                if i + 2 < chars.len() && chars[i + 1] == ':' && chars[i + 2] == '=' {
                    tokens.push(Spanned {
                        token: Token::ArithEq,
                        line: tok_line,
                        column: tok_col,
                    });
                    for _ in 0..3 {
                        advance(&mut i, &mut line, &mut column);
                    }
                } else if i + 2 < chars.len() && chars[i + 1] == '\\' && chars[i + 2] == '=' {
                    tokens.push(Spanned {
                        token: Token::ArithNeq,
                        line: tok_line,
                        column: tok_col,
                    });
                    for _ in 0..3 {
                        advance(&mut i, &mut line, &mut column);
                    }
                } else if i + 1 < chars.len() && chars[i + 1] == '<' {
                    tokens.push(Spanned {
                        token: Token::Le,
                        line: tok_line,
                        column: tok_col,
                    });
                    advance(&mut i, &mut line, &mut column);
                    advance(&mut i, &mut line, &mut column);
                } else {
                    tokens.push(Spanned {
                        token: Token::Eq,
                        line: tok_line,
                        column: tok_col,
                    });
                    advance(&mut i, &mut line, &mut column);
                }
            }
            '<' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    tokens.push(Spanned {
                        token: Token::Le,
                        line: tok_line,
                        column: tok_col,
                    });
                    advance(&mut i, &mut line, &mut column);
                    advance(&mut i, &mut line, &mut column);
                } else {
                    tokens.push(Spanned {
                        token: Token::Lt,
                        line: tok_line,
                        column: tok_col,
                    });
                    advance(&mut i, &mut line, &mut column);
                }
            }
            '>' => {
                if i + 1 < chars.len() && chars[i + 1] == '=' {
                    tokens.push(Spanned {
                        token: Token::Ge,
                        line: tok_line,
                        column: tok_col,
                    });
                    advance(&mut i, &mut line, &mut column);
                    advance(&mut i, &mut line, &mut column);
                } else {
                    tokens.push(Spanned {
                        token: Token::Gt,
                        line: tok_line,
                        column: tok_col,
                    });
                    advance(&mut i, &mut line, &mut column);
                }
            }
            '-' => {
                tokens.push(Spanned {
                    token: Token::Minus,
                    line: tok_line,
                    column: tok_col,
                });
                advance(&mut i, &mut line, &mut column);
            }
            '\'' => {
                // Quoted symbol.
                advance(&mut i, &mut line, &mut column);
                let mut text = String::new();
                let mut closed = false;
                while i < chars.len() {
                    if chars[i] == '\\' && i + 1 < chars.len() && chars[i + 1] == '\'' {
                        text.push('\'');
                        advance(&mut i, &mut line, &mut column);
                        advance(&mut i, &mut line, &mut column);
                    } else if chars[i] == '\'' {
                        closed = true;
                        advance(&mut i, &mut line, &mut column);
                        break;
                    } else {
                        text.push(chars[i]);
                        advance(&mut i, &mut line, &mut column);
                    }
                }
                if !closed {
                    return Err(err("unterminated quoted symbol".into(), tok_line, tok_col));
                }
                tokens.push(Spanned {
                    token: Token::Symbol(text),
                    line: tok_line,
                    column: tok_col,
                });
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                while i < chars.len() && chars[i].is_ascii_digit() {
                    text.push(chars[i]);
                    advance(&mut i, &mut line, &mut column);
                }
                let value: i64 = text.parse().map_err(|_| {
                    err(
                        format!("integer literal `{text}` out of range"),
                        tok_line,
                        tok_col,
                    )
                })?;
                tokens.push(Spanned {
                    token: Token::Integer(value),
                    line: tok_line,
                    column: tok_col,
                });
            }
            c if c.is_ascii_lowercase() => {
                let mut text = String::new();
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    text.push(chars[i]);
                    advance(&mut i, &mut line, &mut column);
                }
                let token = match text.as_str() {
                    "not" => Token::Not,
                    "is" => Token::Is,
                    "mod" => Token::Mod,
                    "div" => Token::Div,
                    _ => Token::Symbol(text),
                };
                tokens.push(Spanned {
                    token,
                    line: tok_line,
                    column: tok_col,
                });
            }
            c if c.is_ascii_uppercase() || c == '_' => {
                let mut text = String::new();
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    text.push(chars[i]);
                    advance(&mut i, &mut line, &mut column);
                }
                tokens.push(Spanned {
                    token: Token::Variable(text),
                    line: tok_line,
                    column: tok_col,
                });
            }
            other => {
                return Err(err(
                    format!("unexpected character `{other}`"),
                    tok_line,
                    tok_col,
                ));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(input: &str) -> Vec<Token> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn simple_rule_tokens() {
        let t = toks("winning(X) :- move(X, Y), not winning(Y).");
        assert_eq!(
            t,
            vec![
                Token::Symbol("winning".into()),
                Token::LParen,
                Token::Variable("X".into()),
                Token::RParen,
                Token::Arrow,
                Token::Symbol("move".into()),
                Token::LParen,
                Token::Variable("X".into()),
                Token::Comma,
                Token::Variable("Y".into()),
                Token::RParen,
                Token::Comma,
                Token::Not,
                Token::Symbol("winning".into()),
                Token::LParen,
                Token::Variable("Y".into()),
                Token::RParen,
                Token::Dot,
            ]
        );
    }

    #[test]
    fn operators_and_numbers() {
        let t = toks("N is P * M, A =:= 3, B =\\= 4, C <= 5, D >= 6, E \\= f, G = 7.");
        assert!(t.contains(&Token::Is));
        assert!(t.contains(&Token::Star));
        assert!(t.contains(&Token::ArithEq));
        assert!(t.contains(&Token::ArithNeq));
        assert!(t.contains(&Token::Le));
        assert!(t.contains(&Token::Ge));
        assert!(t.contains(&Token::Neq));
        assert!(t.contains(&Token::Eq));
        assert!(t.contains(&Token::Integer(7)));
    }

    #[test]
    fn prolog_style_le() {
        assert_eq!(toks("X =< 3")[1], Token::Le);
        assert_eq!(toks("X <= 3")[1], Token::Le);
    }

    #[test]
    fn comments_and_whitespace_are_skipped() {
        let t = toks("% header comment\n  p. % trailing\nq.\n");
        assert_eq!(
            t,
            vec![
                Token::Symbol("p".into()),
                Token::Dot,
                Token::Symbol("q".into()),
                Token::Dot
            ]
        );
    }

    #[test]
    fn quoted_symbols() {
        let t = toks("p('Hello world', 'it\\'s').");
        assert_eq!(t[2], Token::Symbol("Hello world".into()));
        assert_eq!(t[4], Token::Symbol("it's".into()));
    }

    #[test]
    fn query_and_lists() {
        let t = toks("?- maplist(f)([a | R], [1, 2]).");
        assert_eq!(t[0], Token::QueryArrow);
        assert!(t.contains(&Token::LBracket));
        assert!(t.contains(&Token::Pipe));
        assert!(t.contains(&Token::Integer(2)));
    }

    #[test]
    fn negation_spellings() {
        assert_eq!(toks("not p")[0], Token::Not);
        assert_eq!(toks("\\+ p")[0], Token::Not);
    }

    #[test]
    fn error_positions() {
        let e = tokenize("p :- q.\n  r :^ s.").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.column >= 5);
        assert!(tokenize("p :- 'unterminated").is_err());
        assert!(tokenize("p ? q").is_err());
        assert!(tokenize("p : q").is_err());
        assert!(tokenize("p # q").is_err());
    }

    #[test]
    fn underscore_is_a_variable() {
        let t = toks("p(_, _X).");
        assert_eq!(t[2], Token::Variable("_".into()));
        assert_eq!(t[4], Token::Variable("_X".into()));
    }
}
