//! # hilog-syntax
//!
//! Concrete syntax for HiLog programs with negation: a tokeniser, a
//! recursive-descent parser producing `hilog-core` data structures, and a
//! pretty printer (the core types' `Display` implementations already produce
//! re-parseable text; this crate adds program-level helpers).
//!
//! The syntax is Prolog-like, extended with HiLog's curried applications
//! (`tc(G)(X, Y)`), `not` for negation, builtin arithmetic/comparison
//! literals, and `N = sum(V, Pattern)` aggregation literals:
//!
//! ```
//! use hilog_syntax::parse_program;
//! let program = parse_program(
//!     "winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).\n\
//!      game(move1).\n\
//!      move1(a, b).",
//! ).unwrap();
//! assert_eq!(program.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod parser;
pub mod printer;

pub use parser::{
    parse_clauses, parse_program, parse_query, parse_rule, parse_term, Clause, ParseError,
};
pub use printer::{program_to_source, query_to_source, rule_to_source};
