//! Recursive-descent parser for the concrete HiLog syntax.
//!
//! Grammar (informally):
//!
//! ```text
//! program  := clause*
//! clause   := term ( ":-" body )? "."           (a rule or fact)
//!           | "?-" body "."                      (a query)
//! body     := literal ("," literal)*
//! literal  := "not" term
//!           | expr ( ("is"|"="|"\="|"=:="|"=\="|"<"|"<="|">"|">=") expr )?
//! expr     := arithmetic expression over terms with +, -, *, /, div, mod
//! term     := primary ("(" args ")")*            (curried HiLog application)
//! primary  := VARIABLE | SYMBOL | INTEGER | "(" expr ")" | list
//! list     := "[" "]" | "[" expr ("," expr)* ("|" expr)? "]"
//! ```
//!
//! `X = sum(V, Pattern)` (and `count` / `min` / `max`) in a body parses as an
//! aggregation literal rather than a unification builtin.

use crate::lexer::{tokenize, LexError, Spanned, Token};
use hilog_core::builtin::{BuiltinCall, BuiltinOp};
use hilog_core::literal::{Aggregate, AggregateFunc, Literal};
use hilog_core::program::Program;
use hilog_core::rule::{Query, Rule};
use hilog_core::term::Term;
use std::fmt;

/// A parse error with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human readable message.
    pub message: String,
    /// 1-based line (0 when the input ended unexpectedly).
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            column: e.column,
        }
    }
}

/// A top-level clause: either a rule/fact or a query.
#[derive(Debug, Clone, PartialEq)]
pub enum Clause {
    /// A rule or fact.
    Rule(Rule),
    /// A query.
    Query(Query),
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    anon_counter: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Self, ParseError> {
        Ok(Parser {
            tokens: tokenize(input)?,
            pos: 0,
            anon_counter: 0,
        })
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn next(&mut self) -> Option<Spanned> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error_here(&self, message: impl Into<String>) -> ParseError {
        match self.tokens.get(self.pos).or_else(|| self.tokens.last()) {
            Some(s) => ParseError {
                message: message.into(),
                line: s.line,
                column: s.column,
            },
            None => ParseError {
                message: message.into(),
                line: 0,
                column: 0,
            },
        }
    }

    fn expect(&mut self, expected: &Token) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == expected => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.error_here(format!("expected `{expected}`, found `{t}`"))),
            None => Err(self.error_here(format!("expected `{expected}`, found end of input"))),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn fresh_anon(&mut self) -> Term {
        self.anon_counter += 1;
        Term::var(format!("_Anon{}", self.anon_counter))
    }

    // ---- terms and arithmetic expressions -------------------------------

    fn parse_primary(&mut self) -> Result<Term, ParseError> {
        match self.next() {
            Some(Spanned {
                token: Token::Symbol(s),
                ..
            }) => Ok(Term::sym(s)),
            Some(Spanned {
                token: Token::Variable(v),
                ..
            }) => {
                if v == "_" {
                    Ok(self.fresh_anon())
                } else {
                    Ok(Term::var(v))
                }
            }
            Some(Spanned {
                token: Token::Integer(i),
                ..
            }) => Ok(Term::int(i)),
            Some(Spanned {
                token: Token::Minus,
                ..
            }) => {
                // Negative number literal or arithmetic negation.
                let inner = self.parse_primary_with_apps()?;
                match inner {
                    Term::Int(i) => Ok(Term::int(-i)),
                    other => Ok(Term::apps("-", vec![other])),
                }
            }
            Some(Spanned {
                token: Token::LParen,
                ..
            }) => {
                let t = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(t)
            }
            Some(Spanned {
                token: Token::LBracket,
                ..
            }) => self.parse_list(),
            Some(s) => Err(ParseError {
                message: format!("expected a term, found `{}`", s.token),
                line: s.line,
                column: s.column,
            }),
            None => Err(self.error_here("expected a term, found end of input")),
        }
    }

    fn parse_list(&mut self) -> Result<Term, ParseError> {
        if self.peek() == Some(&Token::RBracket) {
            self.pos += 1;
            return Ok(Term::nil());
        }
        let mut elements = vec![self.parse_expr()?];
        while self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            elements.push(self.parse_expr()?);
        }
        let tail = if self.peek() == Some(&Token::Pipe) {
            self.pos += 1;
            self.parse_expr()?
        } else {
            Term::nil()
        };
        self.expect(&Token::RBracket)?;
        let mut acc = tail;
        for e in elements.into_iter().rev() {
            acc = Term::cons(e, acc);
        }
        Ok(acc)
    }

    /// A primary followed by any number of argument lists (curried HiLog
    /// application): `tc(G)(X, Y)` parses as `(tc applied to G) applied to X, Y`.
    fn parse_primary_with_apps(&mut self) -> Result<Term, ParseError> {
        let mut term = self.parse_primary()?;
        while self.peek() == Some(&Token::LParen) {
            self.pos += 1;
            let mut args = Vec::new();
            if self.peek() != Some(&Token::RParen) {
                args.push(self.parse_expr()?);
                while self.peek() == Some(&Token::Comma) {
                    self.pos += 1;
                    args.push(self.parse_expr()?);
                }
            }
            self.expect(&Token::RParen)?;
            term = Term::app(term, args);
        }
        Ok(term)
    }

    /// Multiplicative level of arithmetic expressions.
    fn parse_factor(&mut self) -> Result<Term, ParseError> {
        let mut left = self.parse_primary_with_apps()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => "*",
                Some(Token::Slash) => "div",
                Some(Token::Div) => "div",
                Some(Token::Mod) => "mod",
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_primary_with_apps()?;
            left = Term::apps(op, vec![left, right]);
        }
        Ok(left)
    }

    /// Additive level of arithmetic expressions.
    fn parse_expr(&mut self) -> Result<Term, ParseError> {
        let mut left = self.parse_factor()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => "+",
                Some(Token::Minus) => "-",
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_factor()?;
            left = Term::apps(op, vec![left, right]);
        }
        Ok(left)
    }

    // ---- literals, rules, queries ---------------------------------------

    fn parse_literal(&mut self) -> Result<Literal, ParseError> {
        if self.peek() == Some(&Token::Not) {
            self.pos += 1;
            let atom = self.parse_primary_with_apps()?;
            return Ok(Literal::Neg(atom));
        }
        let left = self.parse_expr()?;
        let op = match self.peek() {
            Some(Token::Is) => Some(BuiltinOp::Is),
            Some(Token::Eq) => Some(BuiltinOp::Eq),
            Some(Token::Neq) => Some(BuiltinOp::Neq),
            Some(Token::ArithEq) => Some(BuiltinOp::ArithEq),
            Some(Token::ArithNeq) => Some(BuiltinOp::ArithNeq),
            Some(Token::Lt) => Some(BuiltinOp::Lt),
            Some(Token::Le) => Some(BuiltinOp::Le),
            Some(Token::Gt) => Some(BuiltinOp::Gt),
            Some(Token::Ge) => Some(BuiltinOp::Ge),
            _ => None,
        };
        match op {
            None => Ok(Literal::Pos(left)),
            Some(op) => {
                self.pos += 1;
                let right = self.parse_expr()?;
                // `X = sum(V, Pattern)` is an aggregation literal.
                if op == BuiltinOp::Eq {
                    if let Some(agg) = as_aggregate(&left, &right) {
                        return Ok(Literal::Aggregate(agg));
                    }
                }
                Ok(Literal::Builtin(BuiltinCall::new(op, left, right)))
            }
        }
    }

    fn parse_body(&mut self) -> Result<Vec<Literal>, ParseError> {
        let mut body = vec![self.parse_literal()?];
        while self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            body.push(self.parse_literal()?);
        }
        Ok(body)
    }

    fn parse_clause(&mut self) -> Result<Clause, ParseError> {
        if self.peek() == Some(&Token::QueryArrow) {
            self.pos += 1;
            let body = self.parse_body()?;
            self.expect(&Token::Dot)?;
            return Ok(Clause::Query(Query::new(body)));
        }
        let head = self.parse_primary_with_apps()?;
        match self.peek() {
            Some(Token::Dot) => {
                self.pos += 1;
                Ok(Clause::Rule(Rule::fact(head)))
            }
            Some(Token::Arrow) => {
                self.pos += 1;
                let body = self.parse_body()?;
                self.expect(&Token::Dot)?;
                Ok(Clause::Rule(Rule::new(head, body)))
            }
            Some(t) => {
                Err(self.error_here(format!("expected `.` or `:-` after rule head, found `{t}`")))
            }
            None => {
                Err(self.error_here("expected `.` or `:-` after rule head, found end of input"))
            }
        }
    }

    fn parse_clauses(&mut self) -> Result<Vec<Clause>, ParseError> {
        let mut out = Vec::new();
        while !self.at_end() {
            out.push(self.parse_clause()?);
        }
        Ok(out)
    }
}

/// Recognises `Result = func(Value, Pattern)` aggregations.
fn as_aggregate(result: &Term, right: &Term) -> Option<Aggregate> {
    if let Term::App(name, args) = right {
        if args.len() == 2 {
            if let Term::Sym(s) = &**name {
                let func = match s.name() {
                    "sum" => AggregateFunc::Sum,
                    "count" => AggregateFunc::Count,
                    "min" => AggregateFunc::Min,
                    "max" => AggregateFunc::Max,
                    _ => return None,
                };
                return Some(Aggregate::new(
                    func,
                    result.clone(),
                    args[0].clone(),
                    args[1].clone(),
                ));
            }
        }
    }
    None
}

/// Parses a whole program (rules and facts).  Queries are rejected; use
/// [`parse_clauses`] or [`parse_query`] for query text.
pub fn parse_program(input: &str) -> Result<Program, ParseError> {
    let mut parser = Parser::new(input)?;
    let clauses = parser.parse_clauses()?;
    let mut program = Program::new();
    for clause in clauses {
        match clause {
            Clause::Rule(r) => program.push(r),
            Clause::Query(_) => {
                return Err(ParseError {
                    message: "queries (`?- ...`) are not allowed in a program; use parse_query"
                        .into(),
                    line: 0,
                    column: 0,
                })
            }
        }
    }
    Ok(program)
}

/// Parses a mixed sequence of rules and queries.
pub fn parse_clauses(input: &str) -> Result<Vec<Clause>, ParseError> {
    Parser::new(input)?.parse_clauses()
}

/// Parses a single query.  The leading `?-` and trailing `.` are optional.
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    let trimmed = input.trim();
    let text = if trimmed.starts_with("?-") {
        trimmed.to_string()
    } else {
        format!(
            "?- {}",
            trimmed.trim_end_matches('.').trim_end().to_string() + "."
        )
    };
    let mut parser = Parser::new(&text)?;
    let clauses = parser.parse_clauses()?;
    match clauses.as_slice() {
        [Clause::Query(q)] => Ok(q.clone()),
        _ => Err(ParseError {
            message: "expected exactly one query".into(),
            line: 0,
            column: 0,
        }),
    }
}

/// Parses a single rule or fact.
pub fn parse_rule(input: &str) -> Result<Rule, ParseError> {
    let mut parser = Parser::new(input)?;
    let clauses = parser.parse_clauses()?;
    match clauses.as_slice() {
        [Clause::Rule(r)] => Ok(r.clone()),
        _ => Err(ParseError {
            message: "expected exactly one rule".into(),
            line: 0,
            column: 0,
        }),
    }
}

/// Parses a single term (no trailing dot).
pub fn parse_term(input: &str) -> Result<Term, ParseError> {
    let mut parser = Parser::new(input)?;
    let term = parser.parse_expr()?;
    if !parser.at_end() {
        return Err(parser.error_here("unexpected trailing tokens after term"));
    }
    Ok(term)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_generic_transitive_closure() {
        // Example 2.1.
        let p = parse_program(
            "tc(G)(X, Y) :- G(X, Y).\n\
             tc(G)(X, Y) :- G(X, Z), tc(G)(Z, Y).",
        )
        .unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.rules[0].to_string(), "tc(G)(X, Y) :- G(X, Y).");
        assert_eq!(
            p.rules[1].to_string(),
            "tc(G)(X, Y) :- G(X, Z), tc(G)(Z, Y)."
        );
    }

    #[test]
    fn parse_maplist_with_lists() {
        // Example 2.2.
        let p = parse_program(
            "maplist(F)([], []).\n\
             maplist(F)([X | R], [Y | Z]) :- F(X, Y), maplist(F)(R, Z).",
        )
        .unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.rules[0].head.to_string().contains("maplist(F)(nil, nil)"));
        assert_eq!(
            p.rules[1].to_string(),
            "maplist(F)([X | R], [Y | Z]) :- F(X, Y), maplist(F)(R, Z)."
        );
    }

    #[test]
    fn parse_win_move_with_negation() {
        let p = parse_program("winning(X) :- move(X, Y), not winning(Y).").unwrap();
        assert!(p.rules[0].has_negation());
        assert_eq!(
            p.rules[0].to_string(),
            "winning(X) :- move(X, Y), not winning(Y)."
        );
    }

    #[test]
    fn parse_hilog_game_program_example_6_3() {
        let p = parse_program(
            "winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).\n\
             game(move1).\n\
             game(move2).\n\
             move1(a, b).",
        )
        .unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(
            p.rules[0].to_string(),
            "winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y)."
        );
    }

    #[test]
    fn parse_builtins_and_arithmetic() {
        let r = parse_rule("in(M, X, Y, Z, N) :- q(M, X, P), contains(M, Z, Y, K), N is P * K.")
            .unwrap();
        assert_eq!(r.body.len(), 3);
        assert!(matches!(r.body[2], Literal::Builtin(_)));
        assert_eq!(r.body[2].to_string(), "N is '*'(P, K)");
        let r2 = parse_rule("p(X) :- q(X, N), N >= 2 + 3 * 4.").unwrap();
        assert_eq!(r2.body[1].to_string(), "N >= '+'(2, '*'(3, 4))");
    }

    #[test]
    fn parse_aggregate_literal() {
        let r = parse_rule("contains(M, X, Y, N) :- N = sum(P, in(M, X, Y, _, P)).").unwrap();
        assert_eq!(r.body.len(), 1);
        match &r.body[0] {
            Literal::Aggregate(a) => {
                assert_eq!(a.func, AggregateFunc::Sum);
                assert_eq!(a.result.to_string(), "N");
                assert_eq!(a.value.to_string(), "P");
                assert!(a.pattern.to_string().starts_with("in(M, X, Y, _Anon"));
            }
            other => panic!("expected aggregate, got {other}"),
        }
        // Plain unification is still a builtin.
        let r2 = parse_rule("p(X) :- X = f(a).").unwrap();
        assert!(matches!(r2.body[0], Literal::Builtin(_)));
    }

    #[test]
    fn parse_query_forms() {
        let q1 = parse_query("?- winning(move1)(a).").unwrap();
        assert_eq!(q1.literals.len(), 1);
        let q2 = parse_query("graph(G), tc(G)(X, Y)").unwrap();
        assert_eq!(q2.literals.len(), 2);
        assert_eq!(q2.variables().len(), 3);
    }

    #[test]
    fn parse_facts_and_zero_ary() {
        let p = parse_program("s. p(). q(a).").unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.rules[0].head, Term::sym("s"));
        assert_eq!(p.rules[1].head, Term::apps("p", vec![]));
    }

    #[test]
    fn parse_negative_integers_and_quotes() {
        let t = parse_term("part('Front Wheel', -3)").unwrap();
        assert_eq!(t.args()[1], Term::int(-3));
        assert_eq!(t.args()[0], Term::sym("Front Wheel"));
    }

    #[test]
    fn parenthesised_terms_as_names() {
        // (X)(a) applies a variable name to an argument.
        let t = parse_term("(X)(a)").unwrap();
        assert_eq!(t.to_string(), "X(a)");
        let nested = parse_term("p(a, X)(Y)(b, f(c)(d))").unwrap();
        assert_eq!(nested.to_string(), "p(a, X)(Y)(b, f(c)(d))");
    }

    #[test]
    fn parse_errors_are_reported_with_position() {
        assert!(parse_program("p :- q").is_err());
        assert!(parse_program("p ::- q.").is_err());
        assert!(parse_program(")p.").is_err());
        assert!(parse_term("p(").is_err());
        assert!(parse_term("p(a) extra").is_err());
        let err = parse_program("p.\nq :- .").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn queries_rejected_in_programs() {
        assert!(parse_program("?- p.").is_err());
        let clauses = parse_clauses("p. ?- p.").unwrap();
        assert_eq!(clauses.len(), 2);
        assert!(matches!(clauses[1], Clause::Query(_)));
    }

    #[test]
    fn roundtrip_through_display() {
        let text = "winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).\n\
                    tc(G)(X, Y) :- G(X, Z), tc(G)(Z, Y).\n\
                    move(a, b).\n";
        let p = parse_program(text).unwrap();
        let printed = p.to_string();
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(p, reparsed);
    }

    #[test]
    fn anonymous_variables_are_distinct() {
        let r = parse_rule("p(X) :- q(_, _), r(X).").unwrap();
        // The two `_` occurrences become different variables.
        let vars = r.variables();
        assert_eq!(vars.len(), 3);
    }

    #[test]
    fn example_5_1_program_parses() {
        // p :- X(Y), Y(X).
        let p = parse_program("p :- X(Y), Y(X).").unwrap();
        assert_eq!(p.rules[0].to_string(), "p :- X(Y), Y(X).");
    }

    #[test]
    fn example_6_4_program_parses() {
        let p = parse_program(
            "p(X) :- t(X, Y, Z, P), not p(Y), not p(Z).\n\
             t(a, b, a, p).\n\
             t(c, a, b, p).\n\
             p(b) :- t(X, Y, b, P).",
        )
        .unwrap();
        assert_eq!(p.len(), 4);
    }
}
