//! Pretty printing helpers.
//!
//! The `Display` implementations on the core types already emit re-parseable
//! concrete syntax; this module adds whole-program helpers and a few
//! niceties (section comments, stable ordering of facts).

use hilog_core::program::Program;
use hilog_core::rule::{Query, Rule};

/// Renders a rule as concrete syntax (identical to its `Display` output).
pub fn rule_to_source(rule: &Rule) -> String {
    rule.to_string()
}

/// Renders a query as concrete syntax.
pub fn query_to_source(query: &Query) -> String {
    query.to_string()
}

/// Renders a program as concrete syntax, one clause per line, with proper
/// rules first and facts afterwards (grouped for readability).  The output
/// re-parses to a program equal to the input up to rule order.
pub fn program_to_source(program: &Program) -> String {
    let mut out = String::new();
    let proper: Vec<&Rule> = program.proper_rules().collect();
    let facts: Vec<&Rule> = program.facts().collect();
    if !proper.is_empty() {
        out.push_str("% rules\n");
        for r in proper {
            out.push_str(&r.to_string());
            out.push('\n');
        }
    }
    if !facts.is_empty() {
        out.push_str("% facts\n");
        for r in facts {
            out.push_str(&r.to_string());
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_query};
    use std::collections::BTreeSet;

    #[test]
    fn program_source_reparses_to_same_rule_set() {
        let text = "winning(X) :- move(X, Y), not winning(Y).\n\
                    move(a, b).\n\
                    move(b, c).\n";
        let p = parse_program(text).unwrap();
        let source = program_to_source(&p);
        let reparsed = parse_program(&source).unwrap();
        let a: BTreeSet<String> = p.iter().map(|r| r.to_string()).collect();
        let b: BTreeSet<String> = reparsed.iter().map(|r| r.to_string()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn query_and_rule_helpers() {
        let q = parse_query("?- winning(a).").unwrap();
        assert_eq!(query_to_source(&q), "?- winning(a).");
        let p = parse_program("p :- q.").unwrap();
        assert_eq!(rule_to_source(&p.rules[0]), "p :- q.");
    }

    #[test]
    fn sections_present() {
        let p = parse_program("p :- q. q.").unwrap();
        let src = program_to_source(&p);
        assert!(src.contains("% rules"));
        assert!(src.contains("% facts"));
    }
}
