//! Builders for the generic-versus-specialised transitive-closure workloads
//! (Examples 2.1 and 5.2, experiment E11).

use crate::graphs::{edges_to_facts, Edge};
use hilog_core::program::Program;
use hilog_syntax::parse_program;

/// The *generic* HiLog closure program: one pair of `tc(G)` rules guarded by
/// a `graph` relation (the binding discipline Example 5.2 recommends), plus
/// the edge facts of every listed relation.
///
/// ```text
/// tc(G)(X, Y) :- graph(G), G(X, Y).
/// tc(G)(X, Y) :- graph(G), G(X, Z), tc(G)(Z, Y).
/// graph(e1). e1(p0, p1). ...
/// ```
pub fn generic_closure_program(relations: &[(&str, Vec<Edge>)]) -> Program {
    let mut text = String::from(
        "tc(G)(X, Y) :- graph(G), G(X, Y).\n\
         tc(G)(X, Y) :- graph(G), G(X, Z), tc(G)(Z, Y).\n",
    );
    for (name, edges) in relations {
        text.push_str(&format!("graph({name}).\n"));
        text.push_str(&edges_to_facts(name, edges));
    }
    parse_program(&text).expect("generated generic closure program parses")
}

/// The *specialised* normal closure program for a single relation: the pair
/// of `tc_<name>` rules a first-order programmer would have to write for
/// every relation separately ("With normal logic programs one would have to
/// write a separate tc ... routine for each possible e").
pub fn specialized_closure_program(name: &str, edges: &[Edge]) -> Program {
    let mut text = format!(
        "tc_{name}(X, Y) :- {name}(X, Y).\n\
         tc_{name}(X, Y) :- {name}(X, Z), tc_{name}(Z, Y).\n"
    );
    text.push_str(&edges_to_facts(name, edges));
    parse_program(&text).expect("generated specialised closure program parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs::chain;
    use hilog_core::restriction::is_strongly_range_restricted;

    #[test]
    fn generic_program_shape() {
        let p = generic_closure_program(&[("e1", chain(3)), ("e2", chain(2))]);
        assert!(is_strongly_range_restricted(&p));
        // 2 rules + 2 graph facts + 5 edges.
        assert_eq!(p.len(), 9);
    }

    #[test]
    fn specialized_program_is_normal() {
        let p = specialized_closure_program("e1", &chain(3));
        assert!(p.is_normal());
        assert_eq!(p.len(), 5);
    }
}
