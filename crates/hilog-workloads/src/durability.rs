//! EDB-heavy ingest streams for the durable storage layer.
//!
//! The durability bench and the crash/recovery CI job both need a workload
//! whose cost is dominated by *facts moving through the write path* — WAL
//! appends, incremental application, checkpoint encode/decode — rather than
//! by rule evaluation.  [`durability_workload`] therefore generates a large
//! random edge relation delivered as assert batches over a tiny stratified
//! rule set, plus cheap bound probe queries (the magic-sets route) whose
//! answers depend on the ingested facts: answering one after a restart
//! proves the facts actually came back.

use crate::graphs::node_name;
use hilog_core::program::Program;
use hilog_syntax::parse_program;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`durability_workload`].
#[derive(Debug, Clone)]
pub struct DurabilityWorkloadConfig {
    /// Total `edge` facts delivered through the batches.
    pub facts: usize,
    /// Nodes the edges are drawn over.
    pub nodes: usize,
    /// Facts per assert batch (one batch = one WAL record = one epoch).
    pub batch_size: usize,
    /// Bound probe queries to generate.
    pub probes: usize,
}

impl Default for DurabilityWorkloadConfig {
    fn default() -> Self {
        DurabilityWorkloadConfig {
            facts: 100_000,
            nodes: 20_000,
            batch_size: 500,
            probes: 32,
        }
    }
}

/// A generated ingest stream (see the module docs).
#[derive(Debug, Clone)]
pub struct DurabilityWorkload {
    /// The rule-only base program the store is seeded with.
    pub rules: Program,
    /// Assert batches of ground facts in concrete syntax, in stream order.
    pub batches: Vec<Vec<String>>,
    /// Bound queries (e.g. `"?- linked(p17, X)."`) answerable only with the
    /// ingested facts; each names a node that has at least one edge.
    pub probes: Vec<String>,
    /// The same state as one flat program text (rules plus every fact), for
    /// measuring cold fresh evaluation against recovery.
    pub flat_program: String,
}

/// Builds a deterministic EDB-heavy ingest stream from `config` and `seed`.
/// Edges are distinct (re-asserting an existing fact is a no-op that would
/// dilute write-path measurements) and the rules are definite and linear in
/// the probed node's degree, so probes stay cheap at any scale.
pub fn durability_workload(config: &DurabilityWorkloadConfig, seed: u64) -> DurabilityWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let nodes = config.nodes.max(2);
    let rules_text = "linked(X, Y) :- edge(X, Y).\nlinked(X, Y) :- edge(Y, X).\n";
    let rules = parse_program(rules_text).expect("durability rules parse");

    let mut seen = std::collections::HashSet::with_capacity(config.facts);
    let mut facts = Vec::with_capacity(config.facts);
    while facts.len() < config.facts {
        let u = rng.gen_range(0..nodes);
        let v = rng.gen_range(0..nodes);
        if u != v && seen.insert((u, v)) {
            facts.push((u, v));
        }
    }

    let batch_size = config.batch_size.max(1);
    let batches: Vec<Vec<String>> = facts
        .chunks(batch_size)
        .map(|chunk| {
            chunk
                .iter()
                .map(|&(u, v)| format!("edge({}, {})", node_name(u), node_name(v)))
                .collect()
        })
        .collect();

    let mut probes = Vec::with_capacity(config.probes);
    for _ in 0..config.probes {
        let &(u, _) = &facts[rng.gen_range(0..facts.len())];
        probes.push(format!("?- linked({}, X).", node_name(u)));
    }

    let mut flat_program = String::from(rules_text);
    for &(u, v) in &facts {
        flat_program.push_str(&format!("edge({}, {}).\n", node_name(u), node_name(v)));
    }

    DurabilityWorkload {
        rules,
        batches,
        probes,
        flat_program,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilog_syntax::{parse_query, parse_term};

    fn small() -> DurabilityWorkloadConfig {
        DurabilityWorkloadConfig {
            facts: 200,
            nodes: 50,
            batch_size: 16,
            probes: 8,
        }
    }

    #[test]
    fn workload_is_deterministic_and_parses() {
        let a = durability_workload(&small(), 11);
        let b = durability_workload(&small(), 11);
        assert_eq!(a.batches, b.batches);
        assert_eq!(a.probes, b.probes);
        let c = durability_workload(&small(), 12);
        assert_ne!(a.batches, c.batches);

        for batch in &a.batches {
            for fact in batch {
                let t = parse_term(fact).expect("fact parses");
                assert!(t.is_ground());
            }
        }
        for probe in &a.probes {
            parse_query(probe).expect("probe parses");
        }
        parse_program(&a.flat_program).expect("flat program parses");
    }

    #[test]
    fn facts_are_distinct_and_counted() {
        let w = durability_workload(&small(), 3);
        let all: Vec<&String> = w.batches.iter().flatten().collect();
        assert_eq!(all.len(), 200);
        let unique: std::collections::HashSet<&&String> = all.iter().collect();
        assert_eq!(unique.len(), all.len(), "no duplicate facts in the stream");
    }

    #[test]
    fn probes_answer_against_recovered_state() {
        let w = durability_workload(&small(), 5);
        let program = parse_program(&w.flat_program).unwrap();
        let db = hilog_engine::HiLogDb::new(program);
        let (_, handle) = db.into_serving();
        for probe in &w.probes {
            let result = handle
                .current()
                .query(&parse_query(probe).unwrap())
                .unwrap();
            assert!(
                !result.answers.is_empty(),
                "probe {probe} should have answers"
            );
        }
    }
}
