//! Builders for the win/move game programs of Examples 6.1 and 6.3.

use crate::graphs::{edges_to_facts, Edge};
use hilog_core::program::Program;
use hilog_syntax::parse_program;

/// The normal win/move program of Example 6.1 over the given move edges:
///
/// ```text
/// winning(X) :- move(X, Y), not winning(Y).
/// move(p0, p1). ...
/// ```
pub fn normal_game_program(edges: &[Edge]) -> Program {
    let mut text = String::from("winning(X) :- move(X, Y), not winning(Y).\n");
    text.push_str(&edges_to_facts("move", edges));
    parse_program(&text).expect("generated game program parses")
}

/// The HiLog win/move program of Example 6.3, parameterised by the game:
///
/// ```text
/// winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).
/// game(move1). move1(p0, p1). ...
/// ```
///
/// `games` maps a move-relation name to its edge list.
pub fn hilog_game_program(games: &[(&str, Vec<Edge>)]) -> Program {
    let mut text = String::from("winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).\n");
    for (name, edges) in games {
        text.push_str(&format!("game({name}).\n"));
        text.push_str(&edges_to_facts(name, edges));
    }
    parse_program(&text).expect("generated HiLog game program parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs::chain;
    use hilog_core::restriction::{is_range_restricted_normal, is_strongly_range_restricted};

    #[test]
    fn normal_game_is_range_restricted() {
        let p = normal_game_program(&chain(4));
        assert!(p.is_normal());
        assert!(is_range_restricted_normal(&p));
        assert_eq!(p.len(), 1 + 4);
    }

    #[test]
    fn hilog_game_is_strongly_range_restricted_but_not_normal() {
        let p = hilog_game_program(&[("move1", chain(3)), ("move2", chain(2))]);
        assert!(!p.is_normal());
        assert!(is_strongly_range_restricted(&p));
        // 1 rule + 2 game facts + 3 + 2 move facts.
        assert_eq!(p.len(), 8);
    }

    #[test]
    fn empty_game_list_still_parses() {
        let p = hilog_game_program(&[]);
        assert_eq!(p.len(), 1);
    }
}
