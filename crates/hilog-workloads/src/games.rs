//! Builders for the win/move game programs of Examples 6.1 and 6.3.

use crate::graphs::{chain, edges_to_facts, random_dag, Edge};
use hilog_core::program::Program;
use hilog_syntax::parse_program;
use std::collections::BTreeSet;

/// The normal win/move program of Example 6.1 over the given move edges:
///
/// ```text
/// winning(X) :- move(X, Y), not winning(Y).
/// move(p0, p1). ...
/// ```
pub fn normal_game_program(edges: &[Edge]) -> Program {
    let mut text = String::from("winning(X) :- move(X, Y), not winning(Y).\n");
    text.push_str(&edges_to_facts("move", edges));
    parse_program(&text).expect("generated game program parses")
}

/// The HiLog win/move program of Example 6.3, parameterised by the game:
///
/// ```text
/// winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).
/// game(move1). move1(p0, p1). ...
/// ```
///
/// `games` maps a move-relation name to its edge list.
pub fn hilog_game_program(games: &[(&str, Vec<Edge>)]) -> Program {
    let mut text = String::from("winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).\n");
    for (name, edges) in games {
        text.push_str(&format!("game({name}).\n"));
        text.push_str(&edges_to_facts(name, edges));
    }
    parse_program(&text).expect("generated HiLog game program parses")
}

/// The source text of a *sharded* win/move database: `shards` independent
/// games of `per_shard` positions each, shard `s` over its own predicates
/// `winning{s}` / `move{s}` with moves from a random DAG seeded with
/// `seed + s`:
///
/// ```text
/// winning0(X) :- move0(X, Y), not winning0(Y).
/// move0(s0n0, s0n1). ...
/// winning1(X) :- move1(X, Y), not winning1(Y).
/// ...
/// ```
///
/// The shards share no atoms, so the dependency condensation splits into
/// `shards` independent blocks — the canonical workload for per-component
/// patching and wave-parallel evaluation.  Serving/parallel benchmarks sweep
/// the shard count against the thread count.
pub fn sharded_game_text(shards: usize, per_shard: usize, seed: u64) -> String {
    let mut text = String::new();
    for s in 0..shards {
        text.push_str(&format!(
            "winning{s}(X) :- move{s}(X, Y), not winning{s}(Y).\n"
        ));
        for (u, v) in random_dag(per_shard, 2.0, seed + s as u64) {
            text.push_str(&format!("move{s}(s{s}n{u}, s{s}n{v}).\n"));
        }
    }
    text
}

/// [`sharded_game_text`], parsed.
pub fn sharded_game_program(shards: usize, per_shard: usize, seed: u64) -> Program {
    parse_program(&sharded_game_text(shards, per_shard, seed))
        .expect("generated sharded game program parses")
}

/// The source text of a sharded *chain* win/move database: `shards`
/// independent games, each played on a single path of `len` moves
/// (`move{s}(p0, p1). move{s}(p1, p2). ...`).
///
/// The chain is the deep end of the win/move family.  Position `p{u}` is
/// winning exactly when `len - u` is odd, and deciding `p{u}` requires the
/// entire settled suffix below it, so the game's remoteness — and with it
/// the number of global alternating iterations a whole-program well-founded
/// evaluator performs — grows linearly with `len`.  A component-at-a-time
/// schedule settles each position exactly once instead, which is why the
/// parallel benchmark uses chains to expose the wave evaluator's scheduling
/// advantage independently of the hardware thread count.
pub fn sharded_chain_game_text(shards: usize, len: usize) -> String {
    let mut text = String::new();
    for s in 0..shards {
        text.push_str(&format!(
            "winning{s}(X) :- move{s}(X, Y), not winning{s}(Y).\n"
        ));
        text.push_str(&edges_to_facts(&format!("move{s}"), &chain(len)));
    }
    text
}

/// [`sharded_chain_game_text`], parsed.
pub fn sharded_chain_game_program(shards: usize, len: usize) -> Program {
    parse_program(&sharded_chain_game_text(shards, len))
        .expect("generated sharded chain game program parses")
}

/// Each shard's move-edge set (same seeding as [`sharded_game_text`]), for
/// callers that need to generate *fresh* edges — update workloads that must
/// avoid asserting a duplicate the session would short-circuit.
pub fn sharded_game_edges(shards: usize, per_shard: usize, seed: u64) -> Vec<BTreeSet<Edge>> {
    (0..shards)
        .map(|s| {
            random_dag(per_shard, 2.0, seed + s as u64)
                .into_iter()
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs::chain;
    use hilog_core::restriction::{is_range_restricted_normal, is_strongly_range_restricted};

    #[test]
    fn normal_game_is_range_restricted() {
        let p = normal_game_program(&chain(4));
        assert!(p.is_normal());
        assert!(is_range_restricted_normal(&p));
        assert_eq!(p.len(), 1 + 4);
    }

    #[test]
    fn hilog_game_is_strongly_range_restricted_but_not_normal() {
        let p = hilog_game_program(&[("move1", chain(3)), ("move2", chain(2))]);
        assert!(!p.is_normal());
        assert!(is_strongly_range_restricted(&p));
        // 1 rule + 2 game facts + 3 + 2 move facts.
        assert_eq!(p.len(), 8);
    }

    #[test]
    fn empty_game_list_still_parses() {
        let p = hilog_game_program(&[]);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn sharded_chain_game_has_one_rule_and_len_moves_per_shard() {
        let p = sharded_chain_game_program(3, 5);
        assert!(p.is_normal());
        assert!(is_range_restricted_normal(&p));
        // Per shard: the winning rule plus `len` move facts.
        assert_eq!(p.len(), 3 * (1 + 5));
        // Shards are disjoint: shard 0 of a wider database is unchanged.
        let narrow = sharded_chain_game_text(1, 5);
        assert!(sharded_chain_game_text(3, 5).starts_with(&narrow));
    }

    #[test]
    fn sharded_game_scales_with_the_shard_count() {
        let small = sharded_game_program(1, 8, 7);
        let large = sharded_game_program(4, 8, 7);
        assert!(is_range_restricted_normal(&large));
        // One game rule per shard plus that shard's move facts.
        assert!(large.len() > small.len());
        let edges = sharded_game_edges(4, 8, 7);
        assert_eq!(edges.len(), 4);
        assert_eq!(
            large.len(),
            4 + edges.iter().map(|e| e.len()).sum::<usize>()
        );
        // Same seed, same prefix: shard 0 is identical in both programs.
        assert_eq!(edges[0], sharded_game_edges(1, 8, 7)[0]);
    }
}
