//! Edge-list generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A directed edge between node indices.
pub type Edge = (usize, usize);

/// Node label used by the program builders: `p<i>`.
pub fn node_name(i: usize) -> String {
    format!("p{i}")
}

/// A simple chain `p0 -> p1 -> ... -> pn`.
pub fn chain(n: usize) -> Vec<Edge> {
    (0..n).map(|i| (i, i + 1)).collect()
}

/// A cycle over `n` nodes (`n >= 1`): `p0 -> p1 -> ... -> p(n-1) -> p0`.
pub fn cycle(n: usize) -> Vec<Edge> {
    assert!(n >= 1, "a cycle needs at least one node");
    (0..n).map(|i| (i, (i + 1) % n)).collect()
}

/// A random DAG over `n` nodes: every edge goes from a lower-numbered node to
/// a higher-numbered one, so the graph is acyclic and the corresponding game
/// program is modularly stratified (Example 6.1).  `avg_out_degree` controls
/// density.
pub fn random_dag(n: usize, avg_out_degree: f64, seed: u64) -> Vec<Edge> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    if n < 2 {
        return edges;
    }
    for u in 0..n - 1 {
        // Always keep the graph connected along the spine so games have
        // nontrivial depth.
        edges.push((u, u + 1));
        let extra = avg_out_degree.max(1.0) - 1.0;
        let count = extra.floor() as usize
            + usize::from(rng.gen_bool((extra - extra.floor()).clamp(0.0, 1.0)));
        for _ in 0..count {
            let v = rng.gen_range(u + 1..n);
            edges.push((u, v));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

/// A layered game graph: `layers` layers of `width` positions each, with
/// every position having edges to `branching` random positions in the next
/// layer.  Acyclic by construction; the well-founded model is total and the
/// winning positions alternate in interesting ways.
pub fn layered_game_graph(layers: usize, width: usize, branching: usize, seed: u64) -> Vec<Edge> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    let node = |layer: usize, i: usize| layer * width + i;
    for layer in 0..layers.saturating_sub(1) {
        for i in 0..width {
            for _ in 0..branching.max(1) {
                let j = rng.gen_range(0..width);
                edges.push((node(layer, i), node(layer + 1, j)));
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

/// Renders an edge list as facts for the given binary relation name.
pub fn edges_to_facts(relation: &str, edges: &[Edge]) -> String {
    let mut out = String::new();
    for (u, v) in edges {
        out.push_str(&format!(
            "{relation}({}, {}).\n",
            node_name(*u),
            node_name(*v)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn chain_has_n_edges() {
        assert_eq!(chain(5).len(), 5);
        assert_eq!(chain(0).len(), 0);
        assert_eq!(chain(3), vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn cycle_wraps_around() {
        let c = cycle(4);
        assert_eq!(c.len(), 4);
        assert!(c.contains(&(3, 0)));
    }

    #[test]
    #[should_panic]
    fn empty_cycle_is_rejected() {
        let _ = cycle(0);
    }

    #[test]
    fn random_dag_is_acyclic_and_deterministic() {
        let edges = random_dag(64, 2.5, 7);
        for (u, v) in &edges {
            assert!(u < v, "edge ({u}, {v}) violates the topological order");
        }
        assert_eq!(edges, random_dag(64, 2.5, 7));
        assert_ne!(edges, random_dag(64, 2.5, 8));
        // Density roughly matches the requested out-degree.
        assert!(edges.len() >= 63);
    }

    #[test]
    fn layered_graph_only_connects_adjacent_layers() {
        let edges = layered_game_graph(4, 3, 2, 11);
        for (u, v) in &edges {
            assert_eq!(v / 3, u / 3 + 1, "edge ({u}, {v}) skips a layer");
        }
        let nodes: BTreeSet<usize> = edges.iter().flat_map(|(u, v)| [*u, *v]).collect();
        assert!(nodes.len() <= 12);
    }

    #[test]
    fn facts_rendering() {
        let text = edges_to_facts("move", &chain(2));
        assert_eq!(text, "move(p0, p1).\nmove(p1, p2).\n");
    }
}
