//! # hilog-workloads
//!
//! Workload and program generators for the reproduction of Ross, *"On
//! Negation in HiLog"*.  The paper has no empirical evaluation of its own, so
//! the experiments in EXPERIMENTS.md are driven by synthetic program families
//! that exercise the constructions it defines:
//!
//! * [`graphs`] — edge-list generators (chains, cycles, random DAGs, layered
//!   game graphs) used by the win/move programs of Examples 6.1 / 6.3 and by
//!   the transitive-closure workloads of Examples 2.1 / 5.2;
//! * [`games`] — builders for the normal and HiLog win/move programs;
//! * [`closure`] — builders for generic HiLog closures and their specialised
//!   normal counterparts (experiment E11);
//! * [`parts`] — random part hierarchies for the parts-explosion aggregation
//!   program of Section 6;
//! * [`random_programs`] — random range-restricted normal programs, strongly
//!   range-restricted HiLog programs, and ground extension programs `Q` for
//!   the preservation-under-extensions experiments of Section 5;
//! * [`serving`] — deterministic mixed read/write op streams (reader queries
//!   plus writer batches) for the concurrent serving layer's bench and
//!   concurrency oracle;
//! * [`durability`] — EDB-heavy ingest streams (large batched fact loads
//!   plus cheap bound probes) for the durable storage layer's bench and the
//!   crash/recovery CI job;
//! * [`storage`] — sharded multi-relation streams (many small HiLog
//!   relations tied together by the generic guarded rules of Example 5.2)
//!   for the spill backend and incremental-checkpoint benches.
//!
//! All generators take explicit `u64` seeds and are deterministic, so test
//! failures and benchmark runs are reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod closure;
pub mod durability;
pub mod games;
pub mod graphs;
pub mod parts;
pub mod random_programs;
pub mod serving;
pub mod storage;

pub use closure::{generic_closure_program, specialized_closure_program};
pub use durability::{durability_workload, DurabilityWorkload, DurabilityWorkloadConfig};
pub use games::{
    hilog_game_program, normal_game_program, sharded_chain_game_program, sharded_chain_game_text,
    sharded_game_edges, sharded_game_program, sharded_game_text,
};
pub use graphs::{chain, cycle, edges_to_facts, layered_game_graph, node_name, random_dag, Edge};
pub use parts::{random_part_hierarchy, PartHierarchy};
pub use random_programs::{
    random_ground_extension, random_range_restricted_normal, random_strongly_restricted_hilog,
    ExtensionConfig, HilogProgramConfig, NormalProgramConfig,
};
pub use serving::{serving_workload, ServingWorkload, ServingWorkloadConfig, WriteBatch};
pub use storage::{shard_name, storage_workload, StorageWorkload, StorageWorkloadConfig};
