//! Random part hierarchies for the parts-explosion workload (Section 6).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated part hierarchy: an acyclic set of `(whole, part, quantity)`
/// triples over parts named `part0 ... part{n-1}`, where every edge goes from
/// a lower-numbered part to a higher-numbered one (so the hierarchy is
/// acyclic and the aggregation is modularly stratified).
#[derive(Debug, Clone)]
pub struct PartHierarchy {
    /// The `(whole, part, quantity)` triples.
    pub triples: Vec<(String, String, i64)>,
    /// Number of part names.
    pub parts: usize,
}

impl PartHierarchy {
    /// Renders the hierarchy as the `(relation, whole, part, qty)` tuples
    /// expected by `hilog_engine::aggregate::parts_explosion_program`.
    pub fn as_facts<'a>(&'a self, relation: &'a str) -> Vec<(&'a str, &'a str, &'a str, i64)> {
        self.triples
            .iter()
            .map(|(w, p, q)| (relation, w.as_str(), p.as_str(), *q))
            .collect()
    }

    /// The root part name (`part0`).
    pub fn root(&self) -> &str {
        "part0"
    }
}

/// Generates a random acyclic part hierarchy with `n` parts.  Every part
/// other than the root has at least one parent among the lower-numbered
/// parts; `extra_edges` additional random edges create shared sub-assemblies
/// (diamonds), which exercise the grouping in the `contains` aggregation.
pub fn random_part_hierarchy(n: usize, extra_edges: usize, seed: u64) -> PartHierarchy {
    assert!(n >= 2, "a hierarchy needs at least a root and one part");
    let mut rng = StdRng::seed_from_u64(seed);
    let name = |i: usize| format!("part{i}");
    let mut triples = Vec::new();
    for child in 1..n {
        let parent = rng.gen_range(0..child);
        let qty = rng.gen_range(1..=4);
        triples.push((name(parent), name(child), qty));
    }
    for _ in 0..extra_edges {
        let parent = rng.gen_range(0..n - 1);
        let child = rng.gen_range(parent + 1..n);
        let qty = rng.gen_range(1..=4);
        let triple = (name(parent), name(child), qty);
        if !triples
            .iter()
            .any(|(w, p, _)| *w == triple.0 && *p == triple.1)
        {
            triples.push(triple);
        }
    }
    PartHierarchy { triples, parts: n }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_is_acyclic_and_connected() {
        let h = random_part_hierarchy(32, 16, 3);
        for (whole, part, qty) in &h.triples {
            let w: usize = whole.trim_start_matches("part").parse().unwrap();
            let p: usize = part.trim_start_matches("part").parse().unwrap();
            assert!(w < p, "edge {whole} -> {part} breaks the topological order");
            assert!(*qty >= 1);
        }
        // Every non-root part has a parent.
        for child in 1..32 {
            let name = format!("part{child}");
            assert!(h.triples.iter().any(|(_, p, _)| *p == name));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            random_part_hierarchy(16, 4, 9).triples,
            random_part_hierarchy(16, 4, 9).triples
        );
    }

    #[test]
    fn facts_projection() {
        let h = random_part_hierarchy(4, 0, 1);
        let facts = h.as_facts("bike_parts");
        assert_eq!(facts.len(), h.triples.len());
        assert!(facts.iter().all(|(rel, _, _, _)| *rel == "bike_parts"));
        assert_eq!(h.root(), "part0");
    }

    #[test]
    #[should_panic]
    fn tiny_hierarchies_are_rejected() {
        let _ = random_part_hierarchy(1, 0, 0);
    }
}
