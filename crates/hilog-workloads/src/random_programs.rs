//! Random program generators for the property-based experiments.
//!
//! * [`random_range_restricted_normal`] — range-restricted normal programs
//!   (Definition 4.1), used by experiment E3 to check Theorems 4.1/4.2.
//! * [`random_strongly_restricted_hilog`] — strongly range-restricted HiLog
//!   programs (Definition 5.6), used by experiment E4 to check Theorems
//!   5.3/5.4.
//! * [`random_ground_extension`] — ground programs `Q` over fresh symbols,
//!   the extension witnesses of Definitions 5.3/5.4.
//!
//! All generators construct programs that are range restricted *by
//! construction*: heads and negative literals only use variables that occur
//! in positive body literals.

use hilog_core::literal::Literal;
use hilog_core::program::Program;
use hilog_core::rule::Rule;
use hilog_core::term::Term;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for the random normal-program generator.
#[derive(Debug, Clone, Copy)]
pub struct NormalProgramConfig {
    /// Number of EDB predicates (binary).
    pub edb_predicates: usize,
    /// Number of IDB predicates (unary).
    pub idb_predicates: usize,
    /// Number of constants.
    pub constants: usize,
    /// Number of EDB facts.
    pub facts: usize,
    /// Number of IDB rules.
    pub rules: usize,
    /// Probability that a rule carries a negative literal.
    pub negation_probability: f64,
}

impl Default for NormalProgramConfig {
    fn default() -> Self {
        NormalProgramConfig {
            edb_predicates: 2,
            idb_predicates: 3,
            constants: 5,
            facts: 12,
            rules: 6,
            negation_probability: 0.6,
        }
    }
}

fn constant(i: usize) -> Term {
    Term::sym(format!("c{i}"))
}

/// Generates a range-restricted normal program.
///
/// IDB rules have the shape
/// `idb_i(X) :- edb_j(X, Y) [, idb_k(Y)] [, not idb_l(X)]`,
/// so every head / negated variable occurs in the positive EDB literal and
/// the program satisfies Definition 4.1.  Negation between IDB predicates is
/// unrestricted, so the generated programs range over stratified,
/// modularly-stratified and genuinely three-valued cases.
pub fn random_range_restricted_normal(config: NormalProgramConfig, seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut program = Program::new();
    let edb = |i: usize| format!("edb{i}");
    let idb = |i: usize| format!("idb{i}");

    for _ in 0..config.facts {
        let rel = rng.gen_range(0..config.edb_predicates.max(1));
        let a = rng.gen_range(0..config.constants.max(1));
        let b = rng.gen_range(0..config.constants.max(1));
        program.push(Rule::fact(Term::apps(
            edb(rel),
            vec![constant(a), constant(b)],
        )));
    }
    for _ in 0..config.rules {
        let head_pred = rng.gen_range(0..config.idb_predicates.max(1));
        let edb_pred = rng.gen_range(0..config.edb_predicates.max(1));
        let head = Term::apps(idb(head_pred), vec![Term::var("X")]);
        let mut body = vec![Literal::pos(Term::apps(
            edb(edb_pred),
            vec![Term::var("X"), Term::var("Y")],
        ))];
        if rng.gen_bool(0.5) {
            let dep = rng.gen_range(0..config.idb_predicates.max(1));
            body.push(Literal::pos(Term::apps(idb(dep), vec![Term::var("Y")])));
        }
        if rng.gen_bool(config.negation_probability) {
            let neg = rng.gen_range(0..config.idb_predicates.max(1));
            let var = if rng.gen_bool(0.5) { "X" } else { "Y" };
            body.push(Literal::neg(Term::apps(idb(neg), vec![Term::var(var)])));
        }
        program.push(Rule::new(head, body));
    }
    program
}

/// Parameters for the random HiLog-program generator.
#[derive(Debug, Clone, Copy)]
pub struct HilogProgramConfig {
    /// Number of parameterised relation names (the values the `rel` guard
    /// ranges over).
    pub relation_names: usize,
    /// Number of constants.
    pub constants: usize,
    /// Number of facts per relation.
    pub facts_per_relation: usize,
    /// Whether to include the negation-using derived predicate.
    pub with_negation: bool,
}

impl Default for HilogProgramConfig {
    fn default() -> Self {
        HilogProgramConfig {
            relation_names: 2,
            constants: 4,
            facts_per_relation: 5,
            with_negation: true,
        }
    }
}

/// Generates a strongly range-restricted HiLog program built around
/// parameterised (second-order-style) rules: a guarded generic closure and a
/// guarded complement predicate, over randomly generated base relations.
///
/// ```text
/// reach(R)(X, Y) :- rel(R), R(X, Y).
/// reach(R)(X, Y) :- rel(R), R(X, Z), reach(R)(Z, Y).
/// unlinked(R)(X, Y) :- rel(R), dom(X), dom(Y), not reach(R)(X, Y).   (optional)
/// rel(r0). r0(c1, c2). ... dom(c0). ...
/// ```
pub fn random_strongly_restricted_hilog(config: HilogProgramConfig, seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut text = String::from(
        "reach(R)(X, Y) :- rel(R), R(X, Y).\n\
         reach(R)(X, Y) :- rel(R), R(X, Z), reach(R)(Z, Y).\n",
    );
    if config.with_negation {
        text.push_str("unlinked(R)(X, Y) :- rel(R), dom(X), dom(Y), not reach(R)(X, Y).\n");
    }
    for c in 0..config.constants {
        text.push_str(&format!("dom(c{c}).\n"));
    }
    for r in 0..config.relation_names {
        text.push_str(&format!("rel(r{r}).\n"));
        for _ in 0..config.facts_per_relation {
            // Edges go from lower-numbered to higher-numbered constants so
            // every generated relation is acyclic.
            let a = rng.gen_range(0..config.constants.max(2) - 1);
            let b = rng.gen_range(a + 1..config.constants.max(2));
            text.push_str(&format!("r{r}(c{a}, c{b}).\n"));
        }
    }
    hilog_syntax::parse_program(&text).expect("generated HiLog program parses")
}

/// Parameters for the random ground-extension generator.
#[derive(Debug, Clone, Copy)]
pub struct ExtensionConfig {
    /// Number of fresh predicate symbols.
    pub predicates: usize,
    /// Number of fresh constants.
    pub constants: usize,
    /// Number of ground facts.
    pub facts: usize,
    /// Number of ground rules (possibly with negation between the fresh
    /// predicates).
    pub rules: usize,
}

impl Default for ExtensionConfig {
    fn default() -> Self {
        ExtensionConfig {
            predicates: 3,
            constants: 3,
            facts: 5,
            rules: 3,
        }
    }
}

/// Generates a ground program `Q` over fresh symbols (prefixed `qext_`),
/// suitable as an extension witness for Definitions 5.3 / 5.4: it is ground
/// and shares no symbols with programs that avoid the `qext_` prefix.
pub fn random_ground_extension(config: ExtensionConfig, seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut program = Program::new();
    let pred = |i: usize| format!("qext_p{i}");
    let cst = |i: usize| Term::sym(format!("qext_c{i}"));
    let atom = |rng: &mut StdRng, config: &ExtensionConfig| {
        let p = rng.gen_range(0..config.predicates.max(1));
        let c = rng.gen_range(0..config.constants.max(1));
        Term::apps(pred(p), vec![cst(c)])
    };
    for _ in 0..config.facts {
        program.push(Rule::fact(atom(&mut rng, &config)));
    }
    for _ in 0..config.rules {
        let head = atom(&mut rng, &config);
        let mut body = vec![Literal::pos(atom(&mut rng, &config))];
        if rng.gen_bool(0.4) {
            body.push(Literal::neg(atom(&mut rng, &config)));
        }
        program.push(Rule::new(head, body));
    }
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilog_core::restriction::{is_range_restricted_normal, is_strongly_range_restricted};

    #[test]
    fn normal_generator_respects_definition_4_1() {
        for seed in 0..20 {
            let p = random_range_restricted_normal(NormalProgramConfig::default(), seed);
            assert!(p.is_normal(), "seed {seed}");
            assert!(is_range_restricted_normal(&p), "seed {seed}");
            assert!(!p.is_empty());
        }
    }

    #[test]
    fn hilog_generator_respects_definition_5_6() {
        for seed in 0..20 {
            let p = random_strongly_restricted_hilog(HilogProgramConfig::default(), seed);
            assert!(is_strongly_range_restricted(&p), "seed {seed}");
            assert!(!p.is_normal());
        }
    }

    #[test]
    fn extensions_are_ground_and_fresh() {
        for seed in 0..20 {
            let q = random_ground_extension(ExtensionConfig::default(), seed);
            assert!(q.is_ground(), "seed {seed}");
            assert!(
                q.symbols().iter().all(|s| s.name().starts_with("qext_")),
                "seed {seed}"
            );
        }
        // Fresh symbols never collide with the other generators' programs.
        let p = random_range_restricted_normal(NormalProgramConfig::default(), 1);
        let q = random_ground_extension(ExtensionConfig::default(), 1);
        assert!(p.shares_no_symbols_with(&q));
        let h = random_strongly_restricted_hilog(HilogProgramConfig::default(), 1);
        assert!(h.shares_no_symbols_with(&q));
    }

    #[test]
    fn generators_are_deterministic() {
        let a = random_range_restricted_normal(NormalProgramConfig::default(), 42);
        let b = random_range_restricted_normal(NormalProgramConfig::default(), 42);
        assert_eq!(a, b);
        let c = random_ground_extension(ExtensionConfig::default(), 42);
        let d = random_ground_extension(ExtensionConfig::default(), 42);
        assert_eq!(c, d);
    }
}
