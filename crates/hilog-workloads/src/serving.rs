//! Mixed read/write workloads for the concurrent serving layer.
//!
//! The serving bench and the concurrency oracle both need the same thing: a
//! base program plus a deterministic stream of reader queries and writer
//! batches.  Everything here is rendered as concrete-syntax strings, the
//! common denominator between the in-process path (`parse_query` /
//! `parse_term` at the call site) and the HTTP path (JSON bodies verbatim).
//!
//! The base program is the normal win/move game of Example 6.1 over a random
//! DAG, so reader queries exercise the magic-sets route with negation, and
//! writer batches toggle edges from a disjoint "churn pool" — retracting a
//! churn edge never removes a base edge, keeping the reachable game
//! nontrivial at every epoch.

use crate::graphs::{node_name, random_dag, Edge};
use hilog_core::program::Program;
use hilog_syntax::parse_program;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`serving_workload`].
#[derive(Debug, Clone)]
pub struct ServingWorkloadConfig {
    /// Nodes in the base game graph.
    pub nodes: usize,
    /// Average out-degree of the base DAG.
    pub avg_out_degree: f64,
    /// Size of the churn pool: extra forward edges the writer toggles.
    pub churn_pool: usize,
    /// Facts per writer batch.
    pub batch_size: usize,
    /// Number of writer batches to generate.
    pub write_batches: usize,
    /// Number of reader queries to generate.
    pub queries: usize,
}

impl Default for ServingWorkloadConfig {
    fn default() -> Self {
        ServingWorkloadConfig {
            nodes: 60,
            avg_out_degree: 2.0,
            churn_pool: 40,
            batch_size: 4,
            write_batches: 32,
            queries: 256,
        }
    }
}

/// One writer batch: facts to assert or retract, then publish.
#[derive(Debug, Clone)]
pub struct WriteBatch {
    /// `true` asserts the facts, `false` retracts them.
    pub assert: bool,
    /// Ground facts in concrete syntax, e.g. `"move(p3, p17)"`.
    pub facts: Vec<String>,
}

/// A generated serving workload (see the module docs).
#[derive(Debug, Clone)]
pub struct ServingWorkload {
    /// The base program: the win/move rule plus the base edge facts.
    pub program: Program,
    /// Reader queries in concrete syntax, e.g. `"?- winning(p7)."`.
    pub queries: Vec<String>,
    /// Writer batches, in stream order.
    pub batches: Vec<WriteBatch>,
}

fn move_fact(edge: Edge) -> String {
    format!("move({}, {})", node_name(edge.0), node_name(edge.1))
}

/// Builds a deterministic mixed read/write workload from `config` and
/// `seed`.  Writer batches alternate assert/retract over the churn pool, so
/// replaying the stream toggles edges rather than growing the store without
/// bound; every churn edge is forward (`u < v`), keeping each published
/// program a DAG game that is modularly stratified at every epoch.
pub fn serving_workload(config: &ServingWorkloadConfig, seed: u64) -> ServingWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let nodes = config.nodes.max(2);
    let base = random_dag(nodes, config.avg_out_degree, seed);

    // Churn edges: forward edges not in the base graph.
    let mut churn: Vec<Edge> = Vec::new();
    while churn.len() < config.churn_pool {
        let u = rng.gen_range(0..nodes - 1);
        let v = rng.gen_range(u + 1..nodes);
        if !base.contains(&(u, v)) && !churn.contains(&(u, v)) {
            churn.push((u, v));
        }
    }

    let mut text = String::from("winning(X) :- move(X, Y), not winning(Y).\n");
    for &edge in &base {
        text.push_str(&move_fact(edge));
        text.push_str(".\n");
    }
    let program = parse_program(&text).expect("generated serving program parses");

    // Queries: mostly bound winning/move lookups (the magic route), with an
    // unbound winning(X) sprinkled in (the full-model route).
    let mut queries = Vec::with_capacity(config.queries);
    for _ in 0..config.queries {
        let q = match rng.gen_range(0..8u32) {
            0 => "?- winning(X).".to_string(),
            1..=2 => {
                let u = rng.gen_range(0..nodes);
                format!("?- move({}, X).", node_name(u))
            }
            _ => {
                let u = rng.gen_range(0..nodes);
                format!("?- winning({}).", node_name(u))
            }
        };
        queries.push(q);
    }

    // Batches: each picks `batch_size` churn edges; `asserted` tracks which
    // are live so retract batches name edges that are actually present.
    let mut asserted = vec![false; churn.len()];
    let mut batches = Vec::with_capacity(config.write_batches);
    for round in 0..config.write_batches {
        let assert = round % 2 == 0;
        let mut facts = Vec::with_capacity(config.batch_size);
        let mut tries = 0;
        while facts.len() < config.batch_size && tries < churn.len() * 4 {
            tries += 1;
            let i = rng.gen_range(0..churn.len());
            if asserted[i] != assert {
                asserted[i] = assert;
                facts.push(move_fact(churn[i]));
            }
        }
        if facts.is_empty() {
            // Pool exhausted in this direction; flip one edge anyway so the
            // batch still publishes a change.
            let i = rng.gen_range(0..churn.len());
            asserted[i] = assert;
            facts.push(move_fact(churn[i]));
        }
        batches.push(WriteBatch { assert, facts });
    }

    ServingWorkload {
        program,
        queries,
        batches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilog_core::restriction::is_range_restricted_normal;
    use hilog_syntax::{parse_query, parse_term};

    #[test]
    fn workload_is_deterministic() {
        let config = ServingWorkloadConfig::default();
        let a = serving_workload(&config, 7);
        let b = serving_workload(&config, 7);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.program.len(), b.program.len());
        assert_eq!(a.batches.len(), b.batches.len());
        for (x, y) in a.batches.iter().zip(&b.batches) {
            assert_eq!(x.assert, y.assert);
            assert_eq!(x.facts, y.facts);
        }
        let c = serving_workload(&config, 8);
        assert_ne!(a.queries, c.queries);
    }

    #[test]
    fn workload_pieces_parse() {
        let w = serving_workload(&ServingWorkloadConfig::default(), 1);
        assert!(is_range_restricted_normal(&w.program));
        for q in &w.queries {
            parse_query(q).expect("workload query parses");
        }
        for batch in &w.batches {
            assert!(!batch.facts.is_empty());
            for f in &batch.facts {
                let t = parse_term(f).expect("workload fact parses");
                assert!(t.is_ground());
            }
        }
    }

    #[test]
    fn retract_batches_only_name_live_edges() {
        let w = serving_workload(&ServingWorkloadConfig::default(), 3);
        let mut live: Vec<String> = Vec::new();
        for batch in &w.batches {
            for f in &batch.facts {
                if batch.assert {
                    assert!(!live.contains(f), "assert of already-live {f}");
                    live.push(f.clone());
                } else {
                    let i = live.iter().position(|x| x == f);
                    assert!(i.is_some(), "retract of non-live {f}");
                    live.remove(i.unwrap());
                }
            }
        }
    }
}
