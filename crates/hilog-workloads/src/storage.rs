//! Sharded multi-relation streams for the pluggable storage layer.
//!
//! The spill backend and incremental checkpoints are both *per-relation*
//! mechanisms: the spill store pages whole relations in and out of
//! residency, and an incremental checkpoint rewrites only the relations
//! dirtied since the last manifest.  A single wide `edge` relation (the
//! [`durability`](crate::durability) workload) cannot exercise either, so
//! [`storage_workload`] shards its facts across many HiLog relations — one
//! plain relation symbol `s<i>` per shard, tied together by the generic
//! guarded rules of Example 5.2:
//!
//! ```text
//! linked(G)(X, Y) :- shard(G), G(X, Y).
//! linked(G)(X, Y) :- shard(G), G(Y, X).
//! shard(s0). shard(s1). ...
//! ```
//!
//! Bound probes (`?- linked(s17)(p3, X).`) touch exactly one shard each, so
//! under the spill backend a probe faults in at most one cold relation; the
//! update stream touches a small fixed subset of shards, so an incremental
//! checkpoint after it should rewrite only that subset.

use crate::graphs::node_name;
use hilog_core::program::Program;
use hilog_syntax::parse_program;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`storage_workload`].
#[derive(Debug, Clone)]
pub struct StorageWorkloadConfig {
    /// Shard relations the facts are spread over.
    pub relations: usize,
    /// Distinct facts per shard relation.
    pub facts_per_relation: usize,
    /// Nodes each shard's edges are drawn over.
    pub nodes: usize,
    /// Bound probe queries to generate (spread across shards).
    pub probes: usize,
    /// Shards the post-ingest update stream touches.
    pub dirty_relations: usize,
    /// New facts per dirtied shard in the update stream.
    pub updates_per_relation: usize,
}

impl Default for StorageWorkloadConfig {
    fn default() -> Self {
        StorageWorkloadConfig {
            relations: 100,
            facts_per_relation: 10_000,
            nodes: 2_000,
            probes: 32,
            dirty_relations: 2,
            updates_per_relation: 50,
        }
    }
}

/// A generated sharded stream (see the module docs).
#[derive(Debug, Clone)]
pub struct StorageWorkload {
    /// The base program: generic `linked` rules plus one `shard(s<i>)` fact
    /// per relation.
    pub rules: Program,
    /// Ingest batches of ground facts in concrete syntax; each batch holds
    /// facts of a single shard, shards delivered in order.
    pub batches: Vec<Vec<String>>,
    /// Post-ingest update batches; together they touch exactly
    /// `dirty_relations` shards.
    pub updates: Vec<Vec<String>>,
    /// The shard relation names the update stream dirties.
    pub dirty: Vec<String>,
    /// Bound queries (e.g. `"?- linked(s17)(p3, X)."`), each answerable from
    /// a single shard's ingested facts.
    pub probes: Vec<String>,
    /// Rules plus every ingested fact (updates excluded) as one flat program
    /// text, for cold-evaluation baselines.
    pub flat_program: String,
}

/// Shard relation name, e.g. `s17`.
pub fn shard_name(index: usize) -> String {
    format!("s{index}")
}

/// Builds a deterministic sharded stream from `config` and `seed`.  Facts
/// are distinct within each shard (re-asserting an existing fact is a no-op
/// that would dilute write-path measurements) and the update stream's facts
/// are distinct from the ingested ones.
pub fn storage_workload(config: &StorageWorkloadConfig, seed: u64) -> StorageWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let nodes = config.nodes.max(2);
    let relations = config.relations.max(1);

    let mut rules_text = String::from(
        "linked(G)(X, Y) :- shard(G), G(X, Y).\n\
         linked(G)(X, Y) :- shard(G), G(Y, X).\n",
    );
    for shard in 0..relations {
        rules_text.push_str(&format!("shard({}).\n", shard_name(shard)));
    }
    let rules = parse_program(&rules_text).expect("storage workload rules parse");

    // Per-shard distinct edges; `seen` is reused per shard because shards
    // are independent relations.
    let mut shard_edges: Vec<Vec<(usize, usize)>> = Vec::with_capacity(relations);
    for _ in 0..relations {
        let mut seen = std::collections::HashSet::with_capacity(config.facts_per_relation);
        let mut edges = Vec::with_capacity(config.facts_per_relation);
        while edges.len() < config.facts_per_relation {
            let u = rng.gen_range(0..nodes);
            let v = rng.gen_range(0..nodes);
            if u != v && seen.insert((u, v)) {
                edges.push((u, v));
            }
        }
        shard_edges.push(edges);
    }

    let batches: Vec<Vec<String>> = shard_edges
        .iter()
        .enumerate()
        .map(|(shard, edges)| {
            let name = shard_name(shard);
            edges
                .iter()
                .map(|&(u, v)| format!("{}({}, {})", name, node_name(u), node_name(v)))
                .collect()
        })
        .collect();

    // Update stream: fresh edges for the first `dirty_relations` shards.
    // Fresh means "not among that shard's ingested edges", checked against
    // the per-shard set rebuilt from `shard_edges`.
    let dirty_count = config.dirty_relations.min(relations);
    let mut updates = Vec::with_capacity(dirty_count);
    let mut dirty = Vec::with_capacity(dirty_count);
    for (shard, edges) in shard_edges.iter().enumerate().take(dirty_count) {
        let name = shard_name(shard);
        let mut seen: std::collections::HashSet<(usize, usize)> = edges.iter().copied().collect();
        let mut batch = Vec::with_capacity(config.updates_per_relation);
        while batch.len() < config.updates_per_relation {
            let u = rng.gen_range(0..nodes);
            let v = rng.gen_range(0..nodes);
            if u != v && seen.insert((u, v)) {
                batch.push(format!("{}({}, {})", name, node_name(u), node_name(v)));
            }
        }
        updates.push(batch);
        dirty.push(name);
    }

    let mut probes = Vec::with_capacity(config.probes);
    for _ in 0..config.probes {
        let shard = rng.gen_range(0..relations);
        let edges = &shard_edges[shard];
        let &(u, _) = &edges[rng.gen_range(0..edges.len())];
        probes.push(format!(
            "?- linked({})({}, X).",
            shard_name(shard),
            node_name(u)
        ));
    }

    let mut flat_program = rules_text.clone();
    for batch in &batches {
        for fact in batch {
            flat_program.push_str(fact);
            flat_program.push_str(".\n");
        }
    }

    StorageWorkload {
        rules,
        batches,
        updates,
        dirty,
        probes,
        flat_program,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hilog_syntax::{parse_query, parse_term};

    fn small() -> StorageWorkloadConfig {
        StorageWorkloadConfig {
            relations: 8,
            facts_per_relation: 40,
            nodes: 30,
            probes: 6,
            dirty_relations: 2,
            updates_per_relation: 5,
        }
    }

    #[test]
    fn workload_is_deterministic_and_parses() {
        let a = storage_workload(&small(), 21);
        let b = storage_workload(&small(), 21);
        assert_eq!(a.batches, b.batches);
        assert_eq!(a.updates, b.updates);
        assert_eq!(a.probes, b.probes);
        let c = storage_workload(&small(), 22);
        assert_ne!(c.batches, a.batches);

        for batch in a.batches.iter().chain(&a.updates) {
            for fact in batch {
                let t = parse_term(fact).expect("fact parses");
                assert!(t.is_ground());
            }
        }
        for probe in &a.probes {
            parse_query(probe).expect("probe parses");
        }
        parse_program(&a.flat_program).expect("flat program parses");
    }

    #[test]
    fn shards_are_disjoint_relations_and_updates_are_fresh() {
        let w = storage_workload(&small(), 7);
        assert_eq!(w.batches.len(), 8);
        for (shard, batch) in w.batches.iter().enumerate() {
            assert_eq!(batch.len(), 40);
            let prefix = format!("{}(", shard_name(shard));
            assert!(batch.iter().all(|fact| fact.starts_with(&prefix)));
        }
        assert_eq!(w.updates.len(), 2);
        assert_eq!(w.dirty, vec!["s0".to_string(), "s1".to_string()]);
        for (batch, ingest) in w.updates.iter().zip(&w.batches) {
            for fact in batch {
                assert!(!ingest.contains(fact), "update {fact} is not fresh");
            }
        }
    }

    #[test]
    fn probes_answer_against_ingested_state() {
        let w = storage_workload(&small(), 5);
        let program = parse_program(&w.flat_program).unwrap();
        let db = hilog_engine::HiLogDb::new(program);
        let (_, handle) = db.into_serving();
        for probe in &w.probes {
            let result = handle
                .current()
                .query(&parse_query(probe).unwrap())
                .unwrap();
            assert!(
                !result.answers.is_empty(),
                "probe {probe} should have answers"
            );
        }
    }
}
