//! Example 2.1 / Example 5.2: one *generic* HiLog transitive closure versus
//! the per-relation closures a normal program would need.
//!
//! Run with `cargo run --example generic_closures`.

use hilog_datalog::engine::DatalogEngine;
use hilog_engine::horn::{least_model, EvalOptions, NegationMode};
use hilog_syntax::parse_term;
use hilog_workloads::{chain, generic_closure_program, random_dag, specialized_closure_program};

fn main() {
    // Three base relations of different shapes.
    let relations = vec![
        ("rail", chain(6)),
        ("road", random_dag(8, 2.0, 42)),
        ("ferry", chain(3)),
    ];

    // One generic HiLog program covers all of them (Example 2.1, guarded by a
    // `graph` relation as Example 5.2 recommends).
    let generic = generic_closure_program(
        &relations
            .iter()
            .map(|(n, e)| (*n, e.clone()))
            .collect::<Vec<_>>(),
    );
    let generic_model =
        least_model(&generic, NegationMode::Forbid, EvalOptions::default()).expect("evaluates");
    println!("generic HiLog program: {} rules", generic.len());
    println!("generic closure derived {} atoms", generic_model.len());

    // The normal-program alternative: one specialised program per relation.
    let mut specialised_total = 0usize;
    for (name, edges) in &relations {
        let program = specialized_closure_program(name, edges);
        let engine = DatalogEngine::new(program).expect("normal program");
        let model = engine.least_model().expect("evaluates");
        let closure_size = model
            .iter()
            .filter(|a| a.name() == &hilog_core::Term::sym(format!("tc_{name}")))
            .count();
        specialised_total += closure_size;
        println!("specialised tc_{name}: {closure_size} closure tuples");
    }

    // The generic program derives exactly the same closure tuples, written as
    // tc(<relation>)(X, Y).
    let mut generic_total = 0usize;
    for (name, _) in &relations {
        let tc_name = parse_term(&format!("tc({name})")).unwrap();
        generic_total += generic_model
            .iter()
            .filter(|a| a.name() == &tc_name)
            .count();
    }
    println!("closure tuples: generic = {generic_total}, specialised = {specialised_total}");
    assert_eq!(generic_total, specialised_total);

    // Spot-check a long-range pair on the chain relation.
    let reachable = generic_model.contains(&parse_term("tc(rail)(p0, p6)").unwrap());
    println!("tc(rail)(p0, p6) = {reachable}");
    assert!(reachable);
}
