//! Section 6.1 / Example 6.6: print the magic-sets rewriting of the
//! (abbreviated) game program, then evaluate the query through a `HiLogDb`
//! session — whose planner picks exactly the magic-sets route for this bound
//! query — and cross-check against the full model.
//!
//! Run with `cargo run --example magic_sets_demo`.

use hilog_engine::magic::magic_transform;
use hilog_engine::session::HiLogDb;
use hilog_syntax::{parse_program, parse_query};

fn main() {
    // The abbreviated game program of Example 6.6 (w/g/m for winning/game/move).
    let program = parse_program(
        "w(M)(X) :- g(M), M(X, Y), not w(M)(Y).\n\
         g(m).\n\
         m(a, b). m(b, c). m(c, d). m(d, e).\n\
         g(other). other(z1, z2). other(z2, z3).",
    )
    .expect("program parses");
    let query = parse_query("?- w(m)(a).").unwrap();

    // The rewriting: magic seed, supplementary chain, dp/dn bookkeeping.
    let magic = magic_transform(&program, &query).expect("strongly range restricted");
    println!("== magic-sets rewriting of {query} ==");
    println!("{magic}");

    // Query-directed evaluation (the rewriting's operational counterpart),
    // chosen by the session's planner because the query is bound.
    let mut db = HiLogDb::new(program);
    let plan = db.explain(&query);
    println!("== plan ==\n{plan}");
    assert!(plan.is_magic_sets());
    let result = db.query(&query).expect("query evaluates");
    let stats = result.stats;
    println!("== evaluation ==");
    println!("w(m)(a) = {}", result.truth);
    println!(
        "tabled {} subgoals / {} answers (the `other` game is never touched)",
        stats.subqueries, stats.answers
    );

    // Cross-check against the session's full bottom-up model.
    let model = db.model().expect("evaluates").clone();
    assert_eq!(
        result.is_true(),
        model.is_true(&hilog_syntax::parse_term("w(m)(a)").unwrap())
    );
    println!(
        "full well-founded model has {} atoms in its base",
        model.base().len()
    );
    assert!(stats.answers < model.base().len());
}
