//! Section 6.1 / Example 6.6: print the magic-sets rewriting of the
//! (abbreviated) game program and evaluate the query both ways.
//!
//! Run with `cargo run --example magic_sets_demo`.

use hilog_engine::horn::EvalOptions;
use hilog_engine::magic::magic_transform;
use hilog_engine::magic_eval::QueryEvaluator;
use hilog_engine::wfs::well_founded_model;
use hilog_syntax::{parse_program, parse_query, parse_term};

fn main() {
    // The abbreviated game program of Example 6.6 (w/g/m for winning/game/move).
    let program = parse_program(
        "w(M)(X) :- g(M), M(X, Y), not w(M)(Y).\n\
         g(m).\n\
         m(a, b). m(b, c). m(c, d). m(d, e).\n\
         g(other). other(z1, z2). other(z2, z3).",
    )
    .expect("program parses");
    let query = parse_query("?- w(m)(a).").unwrap();

    // The rewriting: magic seed, supplementary chain, dp/dn bookkeeping.
    let magic = magic_transform(&program, &query).expect("strongly range restricted");
    println!("== magic-sets rewriting of {query} ==");
    println!("{magic}");

    // Query-directed evaluation (the rewriting's operational counterpart).
    let mut evaluator = QueryEvaluator::new(&program, EvalOptions::default());
    let atom = parse_term("w(m)(a)").unwrap();
    let answer = evaluator.holds(&atom).expect("query evaluates");
    let stats = evaluator.stats();
    println!("== evaluation ==");
    println!("w(m)(a) = {answer}");
    println!(
        "tabled {} subgoals / {} answers (the `other` game is never touched)",
        stats.subqueries, stats.answers
    );

    // Cross-check against full bottom-up evaluation.
    let model = well_founded_model(&program, EvalOptions::default()).expect("evaluates");
    assert_eq!(answer, model.is_true(&atom));
    println!(
        "full well-founded model has {} atoms in its base",
        model.base().len()
    );
    assert!(stats.answers < model.base().len());
}
