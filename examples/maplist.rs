//! Example 2.2: the generic `maplist` predicate, evaluated with the
//! query-directed evaluator (its bottom-up instantiation is infinite, as the
//! end of Section 6.1 warns for programs with recursively applied function
//! symbols).
//!
//! Run with `cargo run --example maplist`.

use hilog_core::Term;
use hilog_engine::horn::EvalOptions;
use hilog_engine::magic_eval::answer_query;
use hilog_syntax::{parse_program, parse_query};

fn main() {
    let program = parse_program(
        "% Example 2.2, with the base case guarded by a fun/1 relation.\n\
         maplist(F)([], []) :- fun(F).\n\
         maplist(F)([X | R], [Y | Z]) :- F(X, Y), maplist(F)(R, Z).\n\
         fun(successor). fun(colour_of).\n\
         successor(0, 1). successor(1, 2). successor(2, 3). successor(3, 4).\n\
         colour_of(apple, red). colour_of(pear, green). colour_of(plum, purple).",
    )
    .expect("program parses");

    // Forward: map successor over [1, 2, 3].
    let (answers, stats) = answer_query(
        &program,
        &parse_query("?- maplist(successor)([1, 2, 3], L).").unwrap(),
        EvalOptions::default(),
    )
    .expect("query evaluates");
    println!("maplist(successor)([1, 2, 3], L):");
    for a in &answers {
        println!("  L = {}", a.apply(&Term::var("L")));
    }
    assert_eq!(answers.len(), 1);
    assert_eq!(answers[0].apply(&Term::var("L")).to_string(), "[2, 3, 4]");

    // Backward: which fruit list has colours [red, purple]?
    let (answers, _) = answer_query(
        &program,
        &parse_query("?- maplist(colour_of)(Fruit, [red, purple]).").unwrap(),
        EvalOptions::default(),
    )
    .expect("query evaluates");
    println!("maplist(colour_of)(Fruit, [red, purple]):");
    for a in &answers {
        println!("  Fruit = {}", a.apply(&Term::var("Fruit")));
    }
    assert_eq!(answers.len(), 1);
    assert_eq!(
        answers[0].apply(&Term::var("Fruit")).to_string(),
        "[apple, plum]"
    );

    println!(
        "({} tabled subgoals, {} rule applications)",
        stats.subqueries, stats.rule_applications
    );
}
