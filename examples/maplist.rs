//! Example 2.2: the generic `maplist` predicate, evaluated through a
//! `HiLogDb` session (whose planner picks the query-directed route — the
//! bottom-up instantiation is infinite, as the end of Section 6.1 warns for
//! programs with recursively applied function symbols).
//!
//! Run with `cargo run --example maplist`.

use hilog_engine::session::HiLogDb;
use hilog_syntax::{parse_program, parse_query};

fn main() {
    let program = parse_program(
        "% Example 2.2, with the base case guarded by a fun/1 relation.\n\
         maplist(F)([], []) :- fun(F).\n\
         maplist(F)([X | R], [Y | Z]) :- F(X, Y), maplist(F)(R, Z).\n\
         fun(successor). fun(colour_of).\n\
         successor(0, 1). successor(1, 2). successor(2, 3). successor(3, 4).\n\
         colour_of(apple, red). colour_of(pear, green). colour_of(plum, purple).",
    )
    .expect("program parses");

    let mut db = HiLogDb::new(program);

    // Forward: map successor over [1, 2, 3].
    let result = db
        .query(&parse_query("?- maplist(successor)([1, 2, 3], L).").unwrap())
        .expect("query evaluates");
    println!("maplist(successor)([1, 2, 3], L):");
    for a in &result.answers {
        println!("  L = {}", a.binding("L").unwrap());
    }
    assert_eq!(result.answers.len(), 1);
    assert_eq!(
        result.answers[0].binding("L").unwrap().to_string(),
        "[2, 3, 4]"
    );
    let stats = result.stats;

    // Backward: which fruit list has colours [red, purple]?
    let back = db
        .query(&parse_query("?- maplist(colour_of)(Fruit, [red, purple]).").unwrap())
        .expect("query evaluates");
    println!("maplist(colour_of)(Fruit, [red, purple]):");
    for a in &back.answers {
        println!("  Fruit = {}", a.binding("Fruit").unwrap());
    }
    assert_eq!(back.answers.len(), 1);
    assert_eq!(
        back.answers[0].binding("Fruit").unwrap().to_string(),
        "[apple, plum]"
    );

    println!(
        "({} tabled subgoals, {} rule applications)",
        stats.subqueries, stats.rule_applications
    );
}
