//! The parts-explosion program of Section 6: modularly stratified
//! aggregation, written once in HiLog for any number of machines.
//!
//! Run with `cargo run --example parts_explosion`.

use hilog_engine::aggregate::{evaluate_aggregate_program, parts_explosion_program};
use hilog_engine::horn::EvalOptions;
use hilog_syntax::parse_term;
use hilog_workloads::random_part_hierarchy;

fn main() {
    // The paper's bicycle: two wheels, 47 spokes per wheel => 94 spokes.
    let bicycle = parts_explosion_program(
        &[("bicycle_factory", "bike_parts")],
        &[
            ("bike_parts", "bicycle", "wheel", 2),
            ("bike_parts", "wheel", "spoke", 47),
            ("bike_parts", "wheel", "rim", 1),
            ("bike_parts", "bicycle", "frame", 1),
        ],
    );
    let result = evaluate_aggregate_program(&bicycle, EvalOptions::default()).expect("evaluates");
    let spokes = parse_term("contains(bicycle_factory, bicycle, spoke, 94)").unwrap();
    println!(
        "bicycle: {} atoms, {} rounds",
        result.model.true_atoms().len(),
        result.rounds
    );
    println!(
        "  contains(bicycle_factory, bicycle, spoke, 94) = {}",
        result.model.is_true(&spokes)
    );
    assert!(result.model.is_true(&spokes));

    // A second machine sharing the program (the HiLog advantage: no
    // per-machine copy of the rules), with a randomly generated hierarchy.
    let hierarchy = random_part_hierarchy(24, 8, 11);
    let facts = hierarchy.as_facts("widget_parts");
    let widget = parts_explosion_program(&[("widget_factory", "widget_parts")], &facts);
    let result = evaluate_aggregate_program(&widget, EvalOptions::default()).expect("evaluates");
    let totals = result
        .model
        .true_atoms()
        .iter()
        .filter(|a| a.to_string().starts_with("contains(widget_factory, part0,"))
        .count();
    println!(
        "widget: {} part triples, {} distinct sub-parts reachable from the root, {} rounds",
        facts.len(),
        totals,
        result.rounds
    );
    assert!(totals > 0);
}
