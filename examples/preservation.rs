//! Section 5: preservation under extensions versus domain independence.
//!
//! Demonstrates Example 5.1 (a domain-independent HiLog program that is *not*
//! preserved under extensions), Theorem 5.3 (range-restricted programs are
//! preserved), and the remark after Theorem 5.4 (a range-restricted but not
//! strongly range-restricted program whose stable models are destroyed by an
//! innocent extension).
//!
//! Run with `cargo run --example preservation`.

use hilog_core::Term;
use hilog_engine::extension::{
    domain_independent_wfs_with_constants, preserved_by_extension_stable,
    preserved_by_extension_wfs,
};
use hilog_engine::horn::EvalOptions;
use hilog_engine::stable::StableOptions;
use hilog_syntax::parse_program;

fn main() {
    // Example 5.1: p :- X(Y), Y(X).
    let example_5_1 = parse_program("p :- X(Y), Y(X).").unwrap();
    let extension = parse_program("q(r). r(q).").unwrap();

    let domain = domain_independent_wfs_with_constants(
        &example_5_1,
        &[Term::sym("new_constant")],
        EvalOptions::default(),
    )
    .unwrap();
    let preservation =
        preserved_by_extension_wfs(&example_5_1, &extension, EvalOptions::default()).unwrap();
    println!("Example 5.1  p :- X(Y), Y(X).");
    println!(
        "  domain independent (extra constants):        {}",
        domain.preserved
    );
    println!(
        "  preserved under the extension {{q(r). r(q).}}: {}",
        preservation.preserved
    );
    println!(
        "  violating atoms: {:?}",
        preservation
            .violations
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
    );
    assert!(domain.preserved && !preservation.preserved);

    // Theorem 5.3: a (strongly) range-restricted program is preserved.
    let game = parse_program(
        "winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).\n\
         game(move1). move1(a, b). move1(b, c).",
    )
    .unwrap();
    let unrelated = parse_program("salary(john, 30). dept(john, toys).").unwrap();
    let verdict = preserved_by_extension_wfs(&game, &unrelated, EvalOptions::default()).unwrap();
    println!(
        "Theorem 5.3  range-restricted game program preserved: {}",
        verdict.preserved
    );
    assert!(verdict.preserved);

    // After Theorem 5.4: range restricted but not strongly — the stable-model
    // semantics is not preserved.
    let weak = parse_program("X(a) :- X(X), not X(a).").unwrap();
    let tiny = parse_program("r(r).").unwrap();
    let verdict = preserved_by_extension_stable(
        &weak,
        &tiny,
        EvalOptions::default(),
        StableOptions::default(),
    )
    .unwrap();
    println!(
        "Theorem 5.4 counterexample  X(a) :- X(X), not X(a).  preserved under {{r(r).}}: {}",
        verdict.preserved
    );
    assert!(!verdict.preserved);
}
