//! Quickstart: open a `HiLogDb` session over a HiLog program with negation,
//! ask queries through the explainable planner, check modular stratification,
//! and assert a new fact incrementally.
//!
//! Run with `cargo run --example quickstart`.

use hilog_engine::session::{HiLogDb, Semantics};
use hilog_syntax::{parse_program, parse_query, parse_term};

fn main() {
    // The parameterised game program of Example 6.3: one generic `winning`
    // rule shared by every game, with the move relation passed as a HiLog
    // predicate-name parameter.
    let program = parse_program(
        "winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).\n\
         game(chess_endgame). game(nim).\n\
         chess_endgame(k1, k2). chess_endgame(k2, k3). chess_endgame(k3, k4).\n\
         nim(n3, n2). nim(n2, n1). nim(n1, n0).",
    )
    .expect("program parses");
    println!("== program ==\n{program}");

    // 1. One stateful session owns the program and all caches.
    let mut db = HiLogDb::builder().program(program.clone()).build();

    // 2. A bound query gets a magic-sets plan; ask who wins the nim endgame.
    let query = parse_query("?- winning(nim)(X).").unwrap();
    println!("== plan ==\n{}", db.explain(&query));
    let result = db.query(&query).expect("query evaluates");
    println!("== answers ==");
    for answer in &result.answers {
        println!("  {answer}");
    }
    // n0 has no moves (lost), so n1 wins, n2 loses, and n3 wins by moving to n2.
    assert_eq!(result.answers.len(), 2, "n1 and n3 win");

    // 3. Asking again reuses the session's subgoal tables: no rule is
    //    re-applied.
    let again = db.query(&query).expect("cached query evaluates");
    assert_eq!(again.stats.rule_applications, 0);
    assert!(again.stats.cached_subqueries > 0);
    println!(
        "== second run == {} cached subgoals, {} rule applications",
        again.stats.cached_subqueries, again.stats.rule_applications
    );

    // 4. Incremental facts: extend the nim chain and ask again; the session
    //    invalidates what the new fact can reach and re-answers.
    db.assert_fact(parse_term("nim(n4, n3)").unwrap())
        .expect("fact asserted");
    let shifted = db.query(&query).expect("query evaluates");
    println!("== after assert_fact(nim(n4, n3)) ==");
    for answer in &shifted.answers {
        println!("  {answer}");
    }

    // 5. Modular stratification for HiLog (Figure 1), through a session with
    //    the `ModularCheck` semantics: accepted, and its accumulated model
    //    agrees with the well-founded model computed by the default session.
    let mut figure1 = HiLogDb::builder()
        .program(program)
        .semantics(Semantics::ModularCheck)
        .build();
    let outcome = figure1.check_modular().expect("Figure 1 runs");
    println!(
        "== modularly stratified for HiLog: {} (settled in {} rounds) ==",
        outcome.modularly_stratified,
        outcome.rounds.len()
    );
    assert!(outcome.modularly_stratified);
    let figure1_model = figure1
        .model()
        .expect("accepted programs have a model")
        .clone();
    let mut wfs_db = HiLogDb::new(figure1.program().clone());
    let model = wfs_db.model().expect("WFS converges");
    for atom in model.base() {
        assert_eq!(figure1_model.truth(atom), model.truth(atom));
    }
    println!("Figure 1 model agrees with the well-founded model.");
}
