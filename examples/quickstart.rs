//! Quickstart: parse a HiLog program with negation, compute its well-founded
//! model, check modular stratification, and ask a query.
//!
//! Run with `cargo run --example quickstart`.

use hilog_engine::horn::EvalOptions;
use hilog_engine::magic_eval::QueryEvaluator;
use hilog_engine::modular::modularly_stratified_hilog;
use hilog_engine::wfs::well_founded_model;
use hilog_syntax::{parse_program, parse_term};

fn main() {
    // The parameterised game program of Example 6.3: one generic `winning`
    // rule shared by every game, with the move relation passed as a HiLog
    // predicate-name parameter.
    let program = parse_program(
        "winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).\n\
         game(chess_endgame). game(nim).\n\
         chess_endgame(k1, k2). chess_endgame(k2, k3). chess_endgame(k3, k4).\n\
         nim(n3, n2). nim(n2, n1). nim(n1, n0).",
    )
    .expect("program parses");

    println!("== program ==\n{program}");

    // 1. The well-founded model (Section 4): total for this program.
    let model = well_founded_model(&program, EvalOptions::default()).expect("evaluates");
    println!("== well-founded model ==");
    for atom in model.true_atoms() {
        println!("  true: {atom}");
    }
    assert!(
        model.is_total(),
        "acyclic games have a total well-founded model"
    );

    // 2. Modular stratification for HiLog (Figure 1): accepted, and the
    //    procedure's accumulated model agrees with the well-founded model.
    let outcome = modularly_stratified_hilog(&program, EvalOptions::default()).expect("runs");
    println!(
        "== modularly stratified for HiLog: {} (settled in {} rounds) ==",
        outcome.modularly_stratified,
        outcome.rounds.len()
    );
    let figure1_model = outcome.model.expect("accepted programs carry their model");
    for atom in model.base() {
        assert_eq!(figure1_model.truth(atom), model.truth(atom));
    }

    // 3. Query evaluation (Section 6.1): who wins the nim endgame?
    let mut evaluator = QueryEvaluator::new(&program, EvalOptions::default());
    let winning_n3 = evaluator
        .holds(&parse_term("winning(nim)(n3)").unwrap())
        .expect("query evaluates");
    println!("== query ==\n  winning(nim)(n3) = {winning_n3}");
    // n0 has no moves (lost), so n1 wins, n2 loses, and n3 wins by moving to n2.
    assert!(winning_n3, "n3 wins by moving to the losing position n2");
    assert!(!evaluator
        .holds(&parse_term("winning(nim)(n2)").unwrap())
        .unwrap());
    assert!(evaluator
        .holds(&parse_term("winning(nim)(n1)").unwrap())
        .unwrap());
}
