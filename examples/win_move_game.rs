//! The win/move game of Examples 6.1 and 6.3 at a realistic size: a random
//! acyclic game graph, served from one `HiLogDb` session three ways — the
//! cached full model, the Figure 1 modular-stratification check, and a
//! magic-sets point query whose tables the session keeps for the next query
//! (the Section 6.1 use case).
//!
//! Run with `cargo run --example win_move_game`.

use hilog_engine::session::{HiLogDb, Semantics};
use hilog_syntax::{parse_query, parse_term};
use hilog_workloads::{hilog_game_program, node_name, random_dag};

fn main() {
    // Two games: the one we ask about, and a much larger one that a
    // query-directed evaluator should never touch.
    let queried_game = random_dag(60, 2.0, 7);
    let other_game = random_dag(400, 2.5, 8);
    let program = hilog_game_program(&[
        ("small_game", queried_game.clone()),
        ("big_game", other_game),
    ]);
    println!(
        "program: {} rules/facts over {} + {} move edges",
        program.len(),
        queried_game.len(),
        400
    );
    let mut db = HiLogDb::new(program.clone());

    // Full bottom-up evaluation of both games, cached by the session.
    let model = db.model().expect("evaluates").clone();
    let winning_positions = model
        .true_atoms()
        .iter()
        .filter(|a| a.to_string().starts_with("winning(small_game)"))
        .count();
    println!(
        "bottom-up WFS: {} atoms in the base, {winning_positions} winning positions in small_game",
        model.base().len()
    );
    assert!(model.is_total());

    // Figure 1 accepts the program (acyclic move graphs) and agrees.
    let mut checker = HiLogDb::builder()
        .program(program)
        .semantics(Semantics::ModularCheck)
        .build();
    let outcome = checker.check_modular().expect("runs");
    assert!(outcome.modularly_stratified);
    println!(
        "Figure 1 procedure: accepted in {} rounds",
        outcome.rounds.len()
    );

    // A point query on the small game only tables subgoals of the small game.
    let root = parse_term(&format!("winning(small_game)({})", node_name(0))).unwrap();
    let query = parse_query(&format!("?- winning(small_game)({}).", node_name(0))).unwrap();
    println!("== plan ==\n{}", db.explain(&query));
    let result = db.query(&query).expect("query evaluates");
    let stats = result.stats;
    println!(
        "query {root} = {}; {} tabled subgoals, {} answers, {} rule applications",
        result.truth, stats.subqueries, stats.answers, stats.rule_applications
    );
    assert_eq!(
        result.is_true(),
        model.is_true(&root),
        "query evaluation agrees with the WFS"
    );
    assert!(
        stats.answers < model.base().len(),
        "the point query touched fewer atoms than full evaluation"
    );

    // The same query again is answered purely from the session's tables.
    let cached = db.query(&query).expect("cached query evaluates");
    println!(
        "repeat query: {} rule applications, {} cached subgoals",
        cached.stats.rule_applications, cached.stats.cached_subqueries
    );
    assert_eq!(cached.stats.rule_applications, 0);
}
