//! The win/move game of Examples 6.1 and 6.3 at a realistic size: a random
//! acyclic game graph, evaluated three ways — bottom-up well-founded model,
//! the Figure 1 modular-stratification procedure, and query-directed
//! evaluation for a point query (the magic-sets use case of Section 6.1).
//!
//! Run with `cargo run --example win_move_game`.

use hilog_engine::horn::EvalOptions;
use hilog_engine::magic_eval::QueryEvaluator;
use hilog_engine::modular::modularly_stratified_hilog;
use hilog_engine::wfs::well_founded_model;
use hilog_syntax::parse_term;
use hilog_workloads::{hilog_game_program, node_name, random_dag};

fn main() {
    // Two games: the one we ask about, and a much larger one that a
    // query-directed evaluator should never touch.
    let queried_game = random_dag(60, 2.0, 7);
    let other_game = random_dag(400, 2.5, 8);
    let program = hilog_game_program(&[
        ("small_game", queried_game.clone()),
        ("big_game", other_game),
    ]);
    println!(
        "program: {} rules/facts over {} + {} move edges",
        program.len(),
        queried_game.len(),
        400
    );

    // Full bottom-up evaluation of both games.
    let model = well_founded_model(&program, EvalOptions::default()).expect("evaluates");
    let winning_positions = model
        .true_atoms()
        .iter()
        .filter(|a| a.to_string().starts_with("winning(small_game)"))
        .count();
    println!(
        "bottom-up WFS: {} atoms in the base, {winning_positions} winning positions in small_game",
        model.base().len()
    );
    assert!(model.is_total());

    // Figure 1 accepts the program (acyclic move graphs) and agrees.
    let outcome = modularly_stratified_hilog(&program, EvalOptions::default()).expect("runs");
    assert!(outcome.modularly_stratified);
    println!(
        "Figure 1 procedure: accepted in {} rounds",
        outcome.rounds.len()
    );

    // A point query on the small game only tables subgoals of the small game.
    let mut evaluator = QueryEvaluator::new(&program, EvalOptions::default());
    let root = parse_term(&format!("winning(small_game)({})", node_name(0))).unwrap();
    let answer = evaluator.holds(&root).expect("query evaluates");
    let stats = evaluator.stats();
    println!(
        "query {root} = {answer}; {} tabled subgoals, {} answers, {} rule applications",
        stats.subqueries, stats.answers, stats.rule_applications
    );
    assert_eq!(
        answer,
        model.is_true(&root),
        "query evaluation agrees with the WFS"
    );
    assert!(
        (stats.answers) < model.base().len(),
        "the point query touched fewer atoms than full evaluation"
    );
}
