//! # hilog-repro
//!
//! Umbrella crate for the reproduction of Kenneth A. Ross, *"On Negation in
//! HiLog"* (PODS 1991 / Journal of Logic Programming 18:27–53, 1994).
//!
//! This crate re-exports the workspace members so that the examples under
//! `examples/` and the integration tests under `tests/` can exercise the full
//! public API through a single dependency:
//!
//! * [`core`] — terms, unification, programs, interpretations, syntactic
//!   classes, the universal-relation transformation;
//! * [`syntax`] — the concrete HiLog syntax (parser and printer);
//! * [`engine`] — grounding, well-founded and stable-model semantics, modular
//!   stratification (Figure 1), magic sets, aggregation, and the `HiLogDb`
//!   session facade;
//! * [`datalog`] — the baseline normal Datalog engine;
//! * [`workloads`] — program and data generators used by the tests,
//!   benchmarks and experiments.

#![forbid(unsafe_code)]

pub use hilog_core as core;
pub use hilog_datalog as datalog;
pub use hilog_engine as engine;
pub use hilog_syntax as syntax;
pub use hilog_workloads as workloads;

/// Convenience prelude pulling in the most frequently used items from every
/// workspace crate.
pub mod prelude {
    pub use hilog_core::prelude::*;
    pub use hilog_engine::prelude::*;
    pub use hilog_syntax::{parse_program, parse_query, parse_term};
}
