//! Section 6's parts-explosion aggregation, cross-checked against an
//! independently computed reference (path-quantity products over the part
//! DAG).

use hilog_engine::aggregate::{evaluate_aggregate_program, parts_explosion_program};
use hilog_engine::horn::EvalOptions;
use hilog_syntax::parse_term;
use hilog_workloads::random_part_hierarchy;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Reference implementation: contains(whole, part) = sum over all paths from
/// `whole` to `part` of the product of edge quantities.  Computed by dynamic
/// programming over the (acyclic) hierarchy.
fn reference_contains(triples: &[(String, String, i64)]) -> BTreeMap<(String, String), i64> {
    let mut direct: BTreeMap<(String, String), i64> = BTreeMap::new();
    for (w, p, q) in triples {
        *direct.entry((w.clone(), p.clone())).or_insert(0) += q;
    }
    // Iterate to fixpoint: contains = direct + direct * contains.
    let mut contains = direct.clone();
    loop {
        let mut next = direct.clone();
        for ((w, z), q1) in &direct {
            for ((z2, p), q2) in &contains {
                if z == z2 {
                    *next.entry((w.clone(), p.clone())).or_insert(0) += q1 * q2;
                }
            }
        }
        if next == contains {
            return contains;
        }
        contains = next;
    }
}

#[test]
fn bicycle_reference_values() {
    let triples = vec![
        ("bicycle".to_string(), "wheel".to_string(), 2),
        ("wheel".to_string(), "spoke".to_string(), 47),
    ];
    let reference = reference_contains(&triples);
    assert_eq!(reference[&("bicycle".to_string(), "spoke".to_string())], 94);
}

#[test]
fn parts_explosion_matches_reference_on_random_hierarchies() {
    for seed in 0..5u64 {
        let hierarchy = random_part_hierarchy(14, 6, seed);
        let reference = reference_contains(&hierarchy.triples);
        let program = parts_explosion_program(&[("m", "parts")], &hierarchy.as_facts("parts"));
        let result = evaluate_aggregate_program(&program, EvalOptions::default()).unwrap();
        for ((whole, part), qty) in &reference {
            let atom = parse_term(&format!("contains(m, {whole}, {part}, {qty})")).unwrap();
            assert!(
                result.model.is_true(&atom),
                "seed {seed}: expected {atom} (reference {qty})"
            );
        }
        // And no contains atom disagrees with the reference.
        for atom in result.model.true_atoms() {
            let text = atom.to_string();
            if let Some(inner) = text.strip_prefix("contains(m, ") {
                let parts: Vec<&str> = inner.trim_end_matches(')').split(", ").collect();
                let (whole, part, qty) = (parts[0], parts[1], parts[2].parse::<i64>().unwrap());
                assert_eq!(
                    reference.get(&(whole.to_string(), part.to_string())),
                    Some(&qty),
                    "seed {seed}: spurious {atom}"
                );
            }
        }
    }
}

#[test]
fn shared_hierarchies_are_grouped_per_machine() {
    // Two machines over the same part relation must get identical totals,
    // and a third machine over a different relation must not be affected.
    let program = parts_explosion_program(
        &[("m1", "shared"), ("m2", "shared"), ("m3", "own")],
        &[
            ("shared", "engine", "bolt", 8),
            ("shared", "engine", "piston", 4),
            ("shared", "piston", "bolt", 2),
            ("own", "engine", "bolt", 1),
        ],
    );
    let result = evaluate_aggregate_program(&program, EvalOptions::default()).unwrap();
    for machine in ["m1", "m2"] {
        let atom = parse_term(&format!("contains({machine}, engine, bolt, 16)")).unwrap();
        assert!(result.model.is_true(&atom), "{machine}");
    }
    assert!(result
        .model
        .is_true(&parse_term("contains(m3, engine, bolt, 1)").unwrap()));
    assert!(!result
        .model
        .is_true(&parse_term("contains(m3, engine, bolt, 16)").unwrap()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The parts-explosion evaluation agrees with the reference on random
    /// acyclic hierarchies of varying size and sharing.
    #[test]
    fn aggregation_matches_reference(parts in 4usize..16, extra in 0usize..8, seed in 0u64..1_000) {
        let hierarchy = random_part_hierarchy(parts, extra, seed);
        let reference = reference_contains(&hierarchy.triples);
        let program = parts_explosion_program(&[("m", "parts")], &hierarchy.as_facts("parts"));
        let result = evaluate_aggregate_program(&program, EvalOptions::default()).unwrap();
        for ((whole, part), qty) in &reference {
            let atom = parse_term(&format!("contains(m, {whole}, {part}, {qty})")).unwrap();
            prop_assert!(result.model.is_true(&atom), "expected {} = {}", atom, qty);
        }
    }
}
