//! Theorems 4.1 and 4.2: for range-restricted normal programs, the HiLog
//! semantics conservatively extends the normal semantics.
//!
//! The HiLog engine evaluates the program over its HiLog instantiation
//! (relevant instantiation, which is exact for range-restricted programs);
//! the baseline `hilog-datalog` engine evaluates it as a conventional normal
//! program.  The two must agree on every normal atom, and the HiLog model
//! must not make any non-normal atom true — i.e. it conservatively extends
//! the normal model.

use hilog_core::herbrand::Vocabulary;
use hilog_core::restriction::is_range_restricted_normal;
use hilog_datalog::engine::DatalogEngine;
use hilog_engine::session::HiLogDb;
use hilog_workloads::random_programs::{random_range_restricted_normal, NormalProgramConfig};
use proptest::prelude::*;

/// Theorem 4.1 for one program: the HiLog well-founded model conservatively
/// extends the normal well-founded model.
fn check_theorem_4_1(program: &hilog_core::Program) {
    assert!(program.is_normal() && is_range_restricted_normal(program));
    let hilog_model = HiLogDb::new(program.clone())
        .model()
        .expect("hilog wfs")
        .clone();
    let normal_model = DatalogEngine::new(program.clone())
        .expect("normal program")
        .well_founded_model()
        .expect("normal wfs");
    // Same truth value on every atom of the normal base.
    for atom in normal_model.base() {
        assert_eq!(
            hilog_model.truth(atom),
            normal_model.truth(atom),
            "disagreement on {atom} in\n{program}"
        );
    }
    // Conservative extension: no new true/undefined atoms over P's vocabulary.
    let vocab = Vocabulary::of_program(program);
    assert!(
        hilog_model.conservatively_extends(&normal_model, |a| vocab.generates(a)),
        "HiLog model is not a conservative extension for\n{program}"
    );
}

/// Theorem 4.2 for one program: stable models correspond one to one.
fn check_theorem_4_2(program: &hilog_core::Program) {
    let hilog = HiLogDb::new(program.clone())
        .stable_models()
        .expect("hilog stable models")
        .to_vec();
    // The baseline engine has no stable-model search; Definition 3.6 says a
    // two-valued well-founded model is the unique stable model, so we compare
    // against that case and otherwise only check the conservative-extension
    // direction against the normal WFS truth values.
    let normal_model = DatalogEngine::new(program.clone())
        .expect("normal program")
        .well_founded_model()
        .expect("normal wfs");
    if normal_model.is_total() {
        assert_eq!(
            hilog.len(),
            1,
            "a total WFS admits exactly one stable model:\n{program}"
        );
        for atom in normal_model.base() {
            assert_eq!(hilog[0].truth(atom), normal_model.truth(atom), "{atom}");
        }
    } else {
        // Every HiLog stable model must agree with the normal WFS wherever the
        // latter is decided (stable models extend the well-founded model).
        for m in &hilog {
            for atom in normal_model.base() {
                match normal_model.truth(atom) {
                    hilog_core::Truth::True => assert!(m.is_true(atom), "{atom}"),
                    hilog_core::Truth::False => assert!(m.is_false(atom), "{atom}"),
                    hilog_core::Truth::Undefined => {}
                }
            }
        }
    }
}

#[test]
fn theorems_4_1_and_4_2_on_the_win_move_family() {
    for n in [2, 4, 8, 16] {
        let program = hilog_workloads::normal_game_program(&hilog_workloads::chain(n));
        check_theorem_4_1(&program);
        check_theorem_4_2(&program);
    }
    // A cyclic game (three-valued WFS) exercises the partial case.
    let cyclic = hilog_workloads::normal_game_program(&hilog_workloads::cycle(4));
    check_theorem_4_1(&cyclic);
    check_theorem_4_2(&cyclic);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 4.1 over randomly generated range-restricted normal programs.
    #[test]
    fn theorem_4_1_holds_for_random_programs(seed in 0u64..10_000) {
        let program = random_range_restricted_normal(NormalProgramConfig::default(), seed);
        check_theorem_4_1(&program);
    }

    /// Theorem 4.2 over randomly generated range-restricted normal programs.
    #[test]
    fn theorem_4_2_holds_for_random_programs(seed in 0u64..10_000) {
        let program = random_range_restricted_normal(NormalProgramConfig::default(), seed);
        check_theorem_4_2(&program);
    }

    /// The two independently implemented well-founded evaluators agree on
    /// random normal programs (an implementation cross-check rather than a
    /// paper theorem).
    #[test]
    fn independent_wfs_implementations_agree(seed in 0u64..10_000) {
        let config = NormalProgramConfig { rules: 8, facts: 16, ..NormalProgramConfig::default() };
        let program = random_range_restricted_normal(config, seed);
        let a = HiLogDb::new(program.clone()).model().unwrap().clone();
        let b = DatalogEngine::new(program.clone()).unwrap().well_founded_model().unwrap();
        for atom in b.base() {
            prop_assert_eq!(a.truth(atom), b.truth(atom), "disagreement on {} in\n{}", atom, program);
        }
    }
}
