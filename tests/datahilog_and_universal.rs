//! Lemma 6.3 (Datahilog finiteness) and the Section 2 universal-relation
//! transformation (including the Section 6 warning that it destroys the
//! stratification structure).

use hilog_core::analysis::is_stratified;
use hilog_core::interpretation::Model;
use hilog_core::restriction::{is_datahilog, is_strongly_range_restricted};
use hilog_core::universal::{decode_atom, universal_transform};
use hilog_engine::horn::{least_model, EvalOptions, NegationMode};
use hilog_engine::session::HiLogDb;
use hilog_engine::EngineError;
use hilog_syntax::parse_program;
use hilog_workloads::{chain, hilog_game_program, random_dag};
use proptest::prelude::*;

/// Well-founded model through the session facade.
fn wfs(program: &hilog_core::Program) -> Result<Model, EngineError> {
    Ok(HiLogDb::new(program.clone()).model()?.clone())
}

/// Lemma 6.3: for strongly range-restricted Datahilog programs, the set of
/// atoms not made false by the well-founded semantics is finite — so
/// relevant-instantiation evaluation terminates without hitting any limit.
#[test]
fn lemma_6_3_datahilog_evaluation_terminates() {
    // The Datahilog version of the game program (Definition 6.7's example).
    let mut text = String::from(
        "winning(M, X) :- game(M), M(X, Y), not winning(M, Y).\n\
         game(move1). game(move2).\n",
    );
    for (u, v) in random_dag(40, 2.0, 17) {
        text.push_str(&format!("move1(p{u}, p{v}).\n"));
    }
    for (u, v) in chain(20) {
        text.push_str(&format!("move2(q{u}, q{v}).\n"));
    }
    let program = parse_program(&text).unwrap();
    assert!(is_datahilog(&program));
    assert!(is_strongly_range_restricted(&program));
    let model = wfs(&program).unwrap();
    // Finite and total: every non-false atom is among the finitely many
    // constructible flat atoms.
    assert!(model.is_total());
    assert!(!model.true_atoms().is_empty());
}

/// The contrast in Lemma 6.3's closing remark: `tc(G)(X, Y) :- graph(G), ...`
/// is *not* Datahilog (nested predicate names), while the flattened
/// `tc(G, X, Y)` version is.
#[test]
fn datahilog_classification_of_the_closure_programs() {
    let nested = parse_program(
        "tc(G)(X, Y) :- graph(G), G(X, Y).\n\
         tc(G)(X, Y) :- graph(G), G(X, Z), tc(G)(Z, Y).\n\
         graph(e). e(a, b).",
    )
    .unwrap();
    assert!(!is_datahilog(&nested));
    let flat = parse_program(
        "tc(G, X, Y) :- graph(G), G(X, Y).\n\
         tc(G, X, Y) :- graph(G), G(X, Z), tc(G, Z, Y).\n\
         graph(e). e(a, b).",
    )
    .unwrap();
    assert!(is_datahilog(&flat));
    // Both evaluate to the same closure, spelled differently.
    let m_nested = wfs(&nested).unwrap();
    let m_flat = wfs(&flat).unwrap();
    assert!(m_nested.is_true(&hilog_syntax::parse_term("tc(e)(a, b)").unwrap()));
    assert!(m_flat.is_true(&hilog_syntax::parse_term("tc(e, a, b)").unwrap()));
}

/// `X(a, b).` — the paper's witness that Lemma 6.3 needs *strong* range
/// restriction: the program is range restricted but its non-false atoms are
/// not finitely enumerable bottom-up (the head name is unconstrained).
#[test]
fn lemma_6_3_fails_without_strong_range_restriction() {
    let program = parse_program("X(a, b).").unwrap();
    assert!(hilog_core::restriction::is_range_restricted_hilog(&program));
    assert!(!is_strongly_range_restricted(&program));
    assert!(matches!(wfs(&program), Err(EngineError::Floundering(_))));
}

/// Section 2: the least model of the universal-relation image corresponds,
/// atom for atom, to the least model of the original negation-free program.
#[test]
fn universal_transformation_preserves_least_models() {
    let program = parse_program(
        "tc(G)(X, Y) :- graph(G), G(X, Y).\n\
         tc(G)(X, Y) :- graph(G), G(X, Z), tc(G)(Z, Y).\n\
         graph(e). e(a, b). e(b, c).",
    )
    .unwrap();
    let direct = least_model(&program, NegationMode::Forbid, EvalOptions::default()).unwrap();
    let transformed = universal_transform(&program).unwrap();
    let image = least_model(&transformed, NegationMode::Forbid, EvalOptions::default()).unwrap();
    // Every call(...) atom decodes to an atom of the direct model, and vice
    // versa every direct atom has an encoded counterpart.
    assert_eq!(direct.len(), image.len());
    for encoded in image.iter() {
        let decoded = decode_atom(encoded).expect("every derived atom is a call atom");
        assert!(direct.contains(&decoded), "spurious atom {decoded}");
    }
    for atom in direct.iter() {
        let encoded = hilog_core::universal::encode_atom(atom);
        assert!(image.contains(&encoded), "missing atom {atom}");
    }
}

/// Section 6: the universal-relation transformation obscures the program
/// structure — a stratified program becomes unstratified, which is exactly
/// why Figure 1 works on the original program instead.
#[test]
fn universal_transformation_destroys_stratification() {
    let program = parse_program(
        "p(X) :- q(X), not r(X).\n\
         q(a). q(b). r(b).",
    )
    .unwrap();
    assert!(is_stratified(&program));
    let transformed = universal_transform(&program).unwrap();
    assert!(!is_stratified(&transformed));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Encode/decode of the universal transformation round-trips on the atoms
    /// of generated game programs.
    #[test]
    fn universal_encoding_roundtrips(n in 2usize..12, seed in 0u64..500) {
        let program = hilog_game_program(&[("g", random_dag(n, 2.0, seed))]);
        for rule in program.iter() {
            let encoded = hilog_core::universal::encode_atom(&rule.head);
            prop_assert_eq!(decode_atom(&encoded), Some(rule.head.clone()));
        }
    }

    /// Datahilog flat game programs always evaluate to total, finite models
    /// (Lemma 6.3 in property form).
    #[test]
    fn datahilog_games_terminate(n in 2usize..20, seed in 0u64..500) {
        let mut text = String::from("winning(M, X) :- game(M), M(X, Y), not winning(M, Y).\ngame(g).\n");
        for (u, v) in random_dag(n, 2.0, seed) {
            text.push_str(&format!("g(p{u}, p{v}).\n"));
        }
        let program = parse_program(&text).unwrap();
        prop_assert!(is_datahilog(&program));
        let model = wfs(&program).unwrap();
        prop_assert!(model.is_total());
    }
}
