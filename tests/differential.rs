//! Differential test oracle for the `HiLogDb` session against the
//! independent `hilog-datalog` naive engine.
//!
//! The two engines share no evaluation code: `hilog-engine` grounds the
//! HiLog instantiation and runs the indexed alternating fixpoint, while
//! `hilog-datalog` is a conventional relation-per-predicate semi-naive
//! evaluator with its own ground well-founded construction.  Feeding both
//! the same random programs and demanding identical three-valued models is
//! therefore a genuine cross-implementation oracle — exactly the kind of
//! check the incremental-maintenance machinery of this PR needs behind it.
//!
//! Coverage (≥ 200 seeded cases in the default configuration, scaled up in
//! CI via `HILOG_DIFFERENTIAL_CASES`):
//!
//! * random range-restricted normal programs **with negation** — HiLogDb
//!   well-founded model vs the naive engine's well-founded model, and the
//!   magic-sets route's three-valued verdict per ground atom vs the model
//!   (pins the tabled evaluator's fixpoint soundness and the
//!   path-independence of its negative-cycle detection);
//! * random **negation-free** normal programs — HiLogDb model (total) vs
//!   the naive least model and the stratified model;
//! * random strongly range-restricted **HiLog** programs (outside the
//!   naive engine's fragment) — full-model plans vs magic-sets plans of an
//!   independent session, and incremental `assert_fact` vs fresh sessions.
//!
//! The seeds in `tests/corpus/differential_seeds.txt` are a committed
//! regression corpus: they are always run, in every configuration, before
//! any additional generated seeds.

use hilog_datalog::DatalogEngine;
use hilog_repro::prelude::*;
use hilog_workloads::random_programs::{
    random_range_restricted_normal, random_strongly_restricted_hilog, HilogProgramConfig,
    NormalProgramConfig,
};

/// The committed regression corpus of pinned seeds.
fn pinned_seeds() -> Vec<u64> {
    include_str!("corpus/differential_seeds.txt")
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| l.trim().parse().expect("corpus seeds are integers"))
        .collect()
}

/// Pinned seeds plus `extra` generated ones; `HILOG_DIFFERENTIAL_CASES`
/// overrides the *total* case count (never dropping below the corpus).
fn seeds(extra: usize) -> Vec<u64> {
    let pinned = pinned_seeds();
    let total = std::env::var("HILOG_DIFFERENTIAL_CASES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(pinned.len() + extra)
        .max(pinned.len());
    let mut out = pinned;
    let mut next = 1_000_000u64;
    while out.len() < total {
        out.push(next);
        next += 1;
    }
    out
}

/// Asserts that two models assign the same truth value to every atom in the
/// union of their bases (atoms outside both bases are false in both by the
/// closed-world convention of `Model`).
fn assert_same_model(ours: &Model, theirs: &Model, context: &str) {
    for atom in ours.base().iter().chain(theirs.base()) {
        assert_eq!(
            ours.truth(atom),
            theirs.truth(atom),
            "divergence on `{atom}` ({context})"
        );
    }
}

#[test]
fn normal_programs_with_negation_agree_with_the_naive_engine() {
    for seed in seeds(70) {
        let program = random_range_restricted_normal(NormalProgramConfig::default(), seed);
        let mut db = HiLogDb::new(program.clone());
        let ours = db.model().expect("HiLogDb evaluates the program").clone();
        let naive = DatalogEngine::new(program)
            .expect("generated programs are normal")
            .well_founded_model()
            .expect("naive engine evaluates the program");
        assert_same_model(&ours, &naive, &format!("seed {seed}, with negation"));
    }
}

#[test]
fn negation_free_programs_agree_with_the_naive_least_and_stratified_models() {
    let config = NormalProgramConfig {
        negation_probability: 0.0,
        ..NormalProgramConfig::default()
    };
    for seed in seeds(30) {
        let program = random_range_restricted_normal(config, seed);
        assert!(!program.has_negation());
        let mut db = HiLogDb::new(program.clone());
        let ours = db.model().expect("HiLogDb evaluates the program").clone();
        assert!(
            ours.is_total(),
            "negation-free well-founded model must be total (seed {seed})"
        );
        let engine = DatalogEngine::new(program).expect("generated programs are normal");
        let least = engine.least_model().expect("naive least model");
        assert_eq!(
            ours.true_atoms(),
            &least,
            "true atoms diverge from the naive least model (seed {seed})"
        );
        let stratified = engine.stratified_model().expect("stratified model");
        assert_same_model(&ours, &stratified, &format!("seed {seed}, negation-free"));
    }
}

#[test]
fn bound_queries_agree_with_the_full_model_on_normal_programs() {
    // Instance-level cross-route oracle on programs *with negation*: every
    // ground atom of the well-founded model must receive the same
    // three-valued truth from the magic-sets route — completing with a
    // two-valued verdict, or falling back on a detected negative cycle and
    // surfacing the undefined value — as the model assigns.  This is the
    // check that pins the evaluator's fixpoint soundness (a prematurely
    // completed scope reports false for atoms the model makes true or
    // undefined) and, because the session keeps its tables across the atom
    // loop, the path-independence of the cycle verdict.
    for seed in seeds(30) {
        let program = random_range_restricted_normal(NormalProgramConfig::default(), seed);
        let mut full = HiLogDb::new(program.clone());
        let model = full.model().expect("model evaluates").clone();
        let mut magic = HiLogDb::new(program);
        for atom in model.base() {
            let result = magic
                .query(&Query::atom(atom.clone()))
                .expect("bound query evaluates");
            assert!(result.plan.is_magic_sets(), "seed {seed}");
            assert_eq!(
                result.truth,
                model.truth(atom),
                "magic route diverges from the model on `{atom}` (seed {seed})"
            );
        }
    }
}

#[test]
fn hilog_programs_agree_across_plan_families() {
    // Outside the naive engine's normal fragment the oracle is
    // cross-*route*: the full-model plan of one session must agree, atom by
    // atom, with the magic-sets plan of an independent session.
    for seed in seeds(0) {
        let program = random_strongly_restricted_hilog(HilogProgramConfig::default(), seed);
        let mut full = HiLogDb::new(program.clone());
        let model = full.model().expect("HiLogDb grounds the program").clone();
        let mut magic = HiLogDb::new(program);
        for atom in model.base() {
            let result = magic
                .query(&Query::atom(atom.clone()))
                .expect("bound query evaluates");
            assert!(
                result.plan.is_magic_sets(),
                "ground-atom query should plan magic-sets (seed {seed})"
            );
            assert_eq!(
                result.truth,
                model.truth(atom),
                "plan families diverge on `{atom}` (seed {seed})"
            );
        }
    }
}

#[test]
fn incremental_assertion_matches_fresh_sessions_on_hilog_programs() {
    // The incremental path (semi-naive delta grounding + per-component
    // model patch) against a from-scratch session, on programs whose
    // variable-headed rules force the degenerate `DirtyScope::All` route.
    for seed in seeds(0) {
        let program = random_strongly_restricted_hilog(HilogProgramConfig::default(), seed);
        let mut db = HiLogDb::new(program.clone());
        db.model().expect("warm the caches");
        let fact = parse_term(&format!("r0(c0, c{})", 1 + (seed % 3))).unwrap();
        db.assert_fact(fact.clone()).unwrap();
        let patched = db.model().expect("patched model").clone();

        let mut extended = program;
        extended.push(Rule::fact(fact));
        let mut fresh = HiLogDb::new(extended);
        let reference = fresh.model().expect("fresh model").clone();
        assert_same_model(&patched, &reference, &format!("seed {seed}, incremental"));
    }
}

#[test]
fn the_regression_corpus_is_committed_and_nonempty() {
    let pinned = pinned_seeds();
    assert!(
        pinned.len() >= 50,
        "the pinned regression corpus must keep at least 50 seeds"
    );
    // 50 pinned seeds run through five differential suites, plus the
    // generated extras, keeps the default run above the 200-case bar.
    let total = seeds(70).len() + 2 * seeds(30).len() + 2 * seeds(0).len();
    assert!(
        total >= 200,
        "differential coverage dropped below 200 cases"
    );
}
