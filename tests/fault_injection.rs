//! Fault-injection sweep over the durable store, plus HTTP-level
//! resilience checks (deadlines, degraded mode, load shedding, slow
//! clients).
//!
//! The sweep's contract: for *every* I/O operation index in a fixed
//! scripted run (fresh open, three mutation batches, an incremental and a
//! whole-store checkpoint, crash, reopen), injecting a fault at exactly
//! that index must leave the store either fully serving (transient fault
//! absorbed by retry) or recoverable — a reopen through clean I/O lands on
//! a batch-boundary state that contains every *acknowledged* batch and
//! answers every query like fresh evaluation of that program.  (A batch
//! whose WAL frame landed intact just before the injected failure may
//! legitimately reappear: unacknowledged writes may be durable, the
//! guarantee is only that acknowledged ones must be.)  No fault index may
//! lose an acknowledged batch, corrupt an answer, or wedge the store.
//!
//! Exhaustive (every op index) by default; `HILOG_FAULT_SWEEP_STRIDE`
//! thins the sweep, `HILOG_FAULT_SWEEP_FROM` skips ahead to an index.

use hilog_repro::prelude::*;
use hilog_store::{FaultIo, FaultPlan, Op, PersistentWriter, RetryPolicy, StoreConfig, StoreError};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn temp_dir(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hilog-fault-{tag}-{}-{case}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const RULES: &str = "reach(X, Y) :- move(X, Y).\n\
                     reach(X, Z) :- move(X, Y), reach(Y, Z).";

const QUERIES: [&str; 3] = ["?- reach(a, X).", "?- reach(X, Y).", "?- colour(a, X)."];

fn seed_db() -> HiLogDb {
    HiLogDb::new(parse_program(RULES).unwrap())
}

/// Rules as a sorted multiset — recovery reconstructs programs order-
/// permuted (see `tests/recovery.rs`), so equality up to permutation is the
/// right cross-recovery check.
fn program_multiset(program: &hilog_core::Program) -> Vec<String> {
    let mut rules: Vec<String> = program.rules.iter().map(|r| r.to_string()).collect();
    rules.sort();
    rules
}

fn answer_set(result: &QueryResult) -> std::collections::BTreeSet<String> {
    result.answers.iter().map(|a| a.to_string()).collect()
}

/// The scripted batches: asserts across two relations plus a retraction,
/// so both checkpoint routes and the WAL tail carry real work.
fn script_batches() -> Vec<Vec<Op>> {
    let fact = |text: &str| Op::AssertFact(parse_term(text).unwrap());
    vec![
        vec![fact("move(a, b)"), fact("colour(a, red)")],
        vec![fact("move(b, c)")],
        vec![
            fact("move(c, d)"),
            Op::RetractFact(parse_term("colour(a, red)").unwrap()),
        ],
    ]
}

/// What a scripted run left behind.  `candidates[0..=acked]` are the
/// batch-boundary programs up to the last acknowledged batch; entries past
/// `acked` are *attempted* batches whose WAL frame may or may not have
/// survived the injected failure — recovery may legitimately land on any
/// of `candidates[acked..]`, never below `acked`.
struct ScriptOutcome {
    candidates: Vec<hilog_core::Program>,
    acked: usize,
    failed_steps: usize,
}

/// Runs the fixed script against `config`, tolerating storage errors: an
/// errored batch is simply not acknowledged.  After every step — failed or
/// not — the published snapshot must still answer exactly like fresh
/// evaluation of the last acknowledged program (read-only degraded mode).
fn run_script(config: &StoreConfig) -> ScriptOutcome {
    // A fault-free in-memory shadow tracks the program each batch produces
    // when applied in order, acknowledged or not.
    let (mut shadow, _shadow_handle) = PersistentWriter::in_memory(seed_db());
    let mut candidates = vec![parse_program(RULES).unwrap()];
    let mut acked = 0;
    let mut failed_steps = 0;

    let (mut writer, handle, _report) = match PersistentWriter::open(config, seed_db()) {
        Ok(opened) => opened,
        Err(_) => {
            return ScriptOutcome {
                candidates,
                acked,
                failed_steps: 1,
            }
        }
    };

    for (k, ops) in script_batches().iter().enumerate() {
        shadow.apply_batch(ops).expect("in-memory shadow applies");
        match writer.apply_batch(ops) {
            Ok(_) => {
                candidates.push(writer.program().clone());
                acked = candidates.len() - 1;
                assert_eq!(
                    program_multiset(writer.program()),
                    program_multiset(shadow.program()),
                    "acknowledged state diverged from the in-order shadow"
                );
            }
            // Refused up front: the batch never reached the WAL, so it is
            // no recovery candidate.
            Err(StoreError::Degraded { .. }) => failed_steps += 1,
            // Failed mid-append: not acknowledged, but the frame may have
            // landed intact before the fault — an admissible extra.
            Err(_) => {
                failed_steps += 1;
                candidates.push(shadow.program().clone());
            }
        }
        let checkpointed = match k {
            0 => Some(writer.checkpoint_incremental()),
            1 => Some(writer.checkpoint()),
            _ => None,
        };
        if let Some(Err(_)) = checkpointed {
            failed_steps += 1;
        }
        // Reads never stop: the published snapshot answers exactly like
        // fresh evaluation of the last acknowledged program.
        let snapshot = handle.current();
        let mut fresh = HiLogDb::new(candidates[acked].clone());
        let query = parse_query(QUERIES[0]).unwrap();
        let served = snapshot
            .query(&query)
            .expect("store under faults still answers reads");
        let reference = fresh.query(&query).unwrap();
        assert_eq!(
            answer_set(&served),
            answer_set(&reference),
            "served answers diverged from the acknowledged state after batch {k}"
        );
    }

    // Simulated crash: writer dropped cold, then a same-config reopen (it
    // may fail under persistent faults; the clean reopen below must not).
    drop((writer, handle));
    if PersistentWriter::open(config, seed_db()).is_err() {
        failed_steps += 1;
    }

    ScriptOutcome {
        candidates,
        acked,
        failed_steps,
    }
}

/// The recovery oracle: reopening `dir` through clean I/O must land on one
/// of the admissible batch-boundary states (`candidates[acked..]`) and
/// answer every query like fresh evaluation of that state.
fn verify_clean_reopen(dir: &Path, outcome: &ScriptOutcome, context: &str) {
    let config = StoreConfig::new(dir);
    let (writer, handle, _report) = PersistentWriter::open(&config, seed_db())
        .unwrap_or_else(|e| panic!("clean reopen must succeed {context}: {e}"));
    let recovered_program = program_multiset(writer.program());
    let matched = outcome.candidates[outcome.acked..]
        .iter()
        .find(|candidate| program_multiset(candidate) == recovered_program);
    let expected = matched.unwrap_or_else(|| {
        panic!(
            "clean reopen lost acknowledged state or invented one {context}: \
             recovered {recovered_program:?}, acknowledged {:?}",
            program_multiset(&outcome.candidates[outcome.acked]),
        )
    });
    let snapshot = handle.current();
    let mut fresh = HiLogDb::new((*expected).clone());
    for query_text in QUERIES {
        let query = parse_query(query_text).unwrap();
        let recovered = snapshot.query(&query).expect("recovered store answers");
        let reference = fresh.query(&query).unwrap();
        assert_eq!(
            answer_set(&recovered),
            answer_set(&reference),
            "recovered answers diverged from fresh evaluation on {query_text} {context}"
        );
    }
}

/// Sweeps the fault point over every I/O op index of the scripted run, in
/// two modes per index: a one-shot transient fault under the default retry
/// policy (absorbed or recovered), and a persistent from-here-on failure
/// (odd indices additionally land short writes, producing torn frames).
#[test]
fn every_fault_point_keeps_acknowledged_state_recoverable() {
    // First, a clean instrumented run: counts the op universe and pins the
    // fully-applied end state.
    let dir = temp_dir("count", 0);
    let counter = FaultIo::over_real();
    let clean = run_script(
        &StoreConfig::new(&dir)
            .io(Arc::new(counter.clone()))
            .retry(RetryPolicy::none()),
    );
    assert_eq!(clean.failed_steps, 0, "the clean scripted run is green");
    assert_eq!(clean.acked, 3, "three batches acknowledge");
    let total_ops = counter.ops();
    assert!(total_ops > 20, "the script exercises a real op stream");
    let full_program = clean.candidates[clean.acked].clone();
    std::fs::remove_dir_all(&dir).ok();

    // Exhaustive by default (the scripted run is small); a larger stride
    // thins the sweep when iterating locally.
    let stride = env_usize("HILOG_FAULT_SWEEP_STRIDE", 1);
    eprintln!("fault sweep: {total_ops} ops, stride {stride}");

    let mut index = env_usize("HILOG_FAULT_SWEEP_FROM", 0) as u64;
    while index < total_ops {
        // Transient: one injected fault at exactly `index`, default retry.
        {
            let dir = temp_dir("transient", index);
            let io = FaultIo::over_real();
            io.fail_nth(index);
            let outcome = run_script(
                &StoreConfig::new(&dir)
                    .io(Arc::new(io.clone()))
                    .retry(RetryPolicy::default()),
            );
            assert!(io.injected() >= 1, "op {index}: the fault was reachable");
            if outcome.failed_steps == 0 {
                assert_eq!(
                    program_multiset(&outcome.candidates[outcome.acked]),
                    program_multiset(&full_program),
                    "op {index}: an absorbed transient fault must not drop a batch"
                );
            }
            verify_clean_reopen(&dir, &outcome, &format!("(transient fault at op {index})"));
            std::fs::remove_dir_all(&dir).ok();
        }

        // Persistent: the disk dies at `index` and never comes back.
        {
            let dir = temp_dir("persistent", index);
            let io = FaultIo::over_real();
            io.set_plan(FaultPlan {
                fail_from: Some(index),
                fail_count: u64::MAX,
                short_writes: index % 2 == 1,
                ..FaultPlan::default()
            });
            let outcome = run_script(
                &StoreConfig::new(&dir)
                    .io(Arc::new(io))
                    .retry(RetryPolicy::none()),
            );
            verify_clean_reopen(
                &dir,
                &outcome,
                &format!("(persistent faults from op {index})"),
            );
            std::fs::remove_dir_all(&dir).ok();
        }

        index += stride as u64;
    }
}

// ---------------------------------------------------------------------------
// HTTP-level resilience
// ---------------------------------------------------------------------------

use hilog_server::{client, Server, ServerConfig};
use std::time::Duration;

/// A transitive closure big enough that evaluation takes well over a
/// millisecond — the workload for deadline tests.
fn slow_program() -> hilog_core::Program {
    let mut source = String::from(
        "reach(X, Y) :- move(X, Y).\n\
         reach(X, Z) :- move(X, Y), reach(Y, Z).\n",
    );
    // Long enough that evaluation reliably overruns a 1ms deadline (the
    // reach/2 closure is quadratic in the chain), short enough that the
    // no-deadline control completes quickly even unoptimised.
    for i in 0..120 {
        source.push_str(&format!("move(n{i}, n{}).\n", i + 1));
    }
    parse_program(&source).unwrap()
}

fn query_body(query: &str) -> String {
    let mut body = String::from("{\"query\":");
    serde::write_json_string(&mut body, query);
    body.push('}');
    body
}

/// `timeout_ms` in the request body aborts a too-slow query with `504`,
/// the same query without a deadline completes, and `/stats` counts the
/// timeout.  A generous deadline surfaces `deadline_checks` in the
/// result's `EvalStats`.
#[test]
fn query_deadline_answers_504_and_counts() {
    let server = Server::bind(
        ServerConfig::ephemeral()
            .workers(2)
            .default_timeout_ms(None),
        HiLogDb::new(slow_program()),
    )
    .expect("bind");
    let addr = server.local_addr();
    let shutdown = server.handle();
    let serving = std::thread::spawn(move || server.serve());

    let response = client::post(
        addr,
        "/query",
        r#"{"query": "?- reach(X, Y).", "timeout_ms": 1}"#,
    )
    .unwrap();
    assert_eq!(response.status, 504, "{}", response.body);
    assert!(response.body.contains("deadline"), "{}", response.body);

    // Without a deadline the very same query completes.
    let response = client::post(addr, "/query", &query_body("?- reach(X, Y).")).unwrap();
    assert_eq!(response.status, 200, "{}", response.body);

    // A generous deadline passes and reports its checks in the stats.
    let response = client::post(
        addr,
        "/query",
        r#"{"query": "?- reach(n0, Y).", "timeout_ms": 60000}"#,
    )
    .unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let json = response.json().unwrap();
    let checks = json
        .get("result")
        .and_then(|r| r.get("stats"))
        .and_then(|s| s.get("deadline_checks"))
        .and_then(|v| v.as_u64())
        .expect("stats carry deadline_checks");
    assert!(checks > 0, "a deadlined query reports its checks");

    let response = client::get(addr, "/stats").unwrap();
    let json = response.json().unwrap();
    assert!(
        json.get("query_timeouts").and_then(|v| v.as_u64()).unwrap() >= 1,
        "{}",
        response.body
    );

    // Bad deadline values are client errors.
    let response = client::post(
        addr,
        "/query",
        r#"{"query": "?- reach(X, Y).", "timeout_ms": "soon"}"#,
    )
    .unwrap();
    assert_eq!(response.status, 400, "{}", response.body);

    shutdown.shutdown();
    serving.join().expect("server exits");
}

/// A dead disk under a live server: mutations degrade to `503` while
/// queries keep answering, `/stats` reports why, and a successful
/// checkpoint after the disk heals re-arms the writer.
#[test]
fn degraded_server_answers_503_and_checkpoint_rearms() {
    let dir = temp_dir("http-degraded", 0);
    let io = FaultIo::over_real();
    let program = parse_program(
        "winning(X) :- move(X, Y), not winning(Y).\n\
         move(a, b). move(b, c).",
    )
    .unwrap();
    let server = Server::bind(
        ServerConfig::ephemeral()
            .workers(2)
            .data_dir(&dir)
            .store_io(Arc::new(io.clone()))
            .store_retry(RetryPolicy::none()),
        HiLogDb::new(program),
    )
    .expect("bind durable server");
    let addr = server.local_addr();
    let shutdown = server.handle();
    let serving = std::thread::spawn(move || server.serve());

    let response = client::post(addr, "/assert", r#"{"facts": ["move(c, d)"]}"#).unwrap();
    assert_eq!(response.status, 200, "{}", response.body);

    // The disk dies: the next mutation degrades the store.
    io.fail_from(io.ops());
    let response = client::post(addr, "/assert", r#"{"facts": ["move(d, e)"]}"#).unwrap();
    assert_eq!(response.status, 503, "{}", response.body);

    // Queries keep serving the last published snapshot.
    let response = client::post(addr, "/query", &query_body("?- winning(c).")).unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let json = response.json().unwrap();
    assert_eq!(
        json.get("result")
            .and_then(|r| r.get("truth"))
            .and_then(|v| v.as_str()),
        Some("true"),
        "degraded store answers from the acknowledged state"
    );

    // Stats say why, and count the injected faults.
    let response = client::get(addr, "/stats").unwrap();
    let json = response.json().unwrap();
    let degraded = json.get("degraded").expect("stats carry degraded");
    assert!(
        degraded.get("reason").and_then(|v| v.as_str()).is_some(),
        "{}",
        response.body
    );
    assert_eq!(
        degraded.get("since_epoch").and_then(|v| v.as_u64()),
        Some(1)
    );
    assert!(
        json.get("injected_faults")
            .and_then(|v| v.as_u64())
            .unwrap()
            >= 1,
        "{}",
        response.body
    );

    // Still read-only: the refusal is now the structured degraded error.
    let response = client::post(addr, "/assert", r#"{"facts": ["move(d, e)"]}"#).unwrap();
    assert_eq!(response.status, 503, "{}", response.body);
    assert!(response.body.contains("read-only"), "{}", response.body);

    // Operator frees space; a successful checkpoint re-arms the writer.
    io.heal();
    let response = client::post(addr, "/checkpoint", "").unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let response = client::post(addr, "/assert", r#"{"facts": ["move(d, e)"]}"#).unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let response = client::get(addr, "/stats").unwrap();
    let json = response.json().unwrap();
    assert!(
        matches!(json.get("degraded"), Some(serde_json::Value::Null)),
        "re-armed stats report degraded: null ({})",
        response.body
    );

    shutdown.shutdown();
    serving.join().expect("server exits");
    std::fs::remove_dir_all(&dir).ok();
}

/// With the single worker pinned by an idle connection and a backlog bound
/// of one, the next arrival is shed inline with `429` + `Retry-After`; the
/// server recovers once the connection drains.
#[test]
fn overloaded_server_sheds_with_429_retry_after() {
    let server = Server::bind(
        ServerConfig::ephemeral()
            .workers(1)
            .max_backlog(1)
            .socket_timeout(Some(Duration::from_secs(30))),
        HiLogDb::new(parse_program("move(a, b).").unwrap()),
    )
    .expect("bind");
    let addr = server.local_addr();
    let shutdown = server.handle();
    let serving = std::thread::spawn(move || server.serve());

    // Pin the only worker: an accepted connection that sends nothing.
    // Polled rather than slept — under a loaded machine the accept loop may
    // take a while to dispatch the idle connection; until it does, requests
    // still answer 200.
    let idle = std::net::TcpStream::connect(addr).unwrap();
    let mut shed = None;
    for _ in 0..100 {
        // A reset mid-shed is possible (the 429 races the close); retry.
        if let Ok(response) = client::get(addr, "/stats") {
            if response.status == 429 {
                shed = Some(response);
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let response = shed.expect("a full backlog sheds the next arrival");
    assert_eq!(response.status, 429, "{}", response.body);
    assert_eq!(response.retry_after, Some(1), "shed responses say when");
    assert!(response.body.contains("overloaded"), "{}", response.body);

    // Draining the idle connection frees the worker; service resumes.
    drop(idle);
    let mut recovered = None;
    for _ in 0..50 {
        if let Ok(response) = client::get(addr, "/stats") {
            if response.status == 200 {
                recovered = Some(response);
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let response = recovered.expect("server recovers after the overload clears");
    let json = response.json().unwrap();
    assert!(
        json.get("shed_requests").and_then(|v| v.as_u64()).unwrap() >= 1,
        "{}",
        response.body
    );

    shutdown.shutdown();
    serving.join().expect("server exits");
}

/// A client that stalls mid-request is cut off by the socket timeout with
/// `408` instead of pinning a worker; oversized bodies stay `413`.
#[test]
fn slow_clients_time_out_and_oversized_bodies_are_rejected() {
    let mut config = ServerConfig::ephemeral()
        .workers(2)
        .socket_timeout(Some(Duration::from_millis(100)));
    config.max_body_bytes = 256;
    let server =
        Server::bind(config, HiLogDb::new(parse_program("move(a, b).").unwrap())).expect("bind");
    let addr = server.local_addr();
    let shutdown = server.handle();
    let serving = std::thread::spawn(move || server.serve());

    let response = client::post_stalled(
        addr,
        "/query",
        &query_body("?- move(a, X)."),
        Duration::from_millis(500),
    )
    .expect("the 408 response is still readable");
    assert_eq!(response.status, 408, "{}", response.body);

    // A prompt client on the same server is unaffected.
    let response = client::post(addr, "/query", &query_body("?- move(a, X).")).unwrap();
    assert_eq!(response.status, 200, "{}", response.body);

    // The body-size limit rejects before buffering the payload.
    let huge = format!(r#"{{"query": "?- move(a, {}). "}}"#, "b".repeat(512));
    let response = client::post(addr, "/query", &huge).unwrap();
    assert_eq!(response.status, 413, "{}", response.body);

    shutdown.shutdown();
    serving.join().expect("server exits");
}
