//! Property oracle for the argument-indexed `AtomStore`: whatever access
//! path `candidates` picks — an argument-index probe, the functor-bucket
//! fallback, or the arity scan for variable predicate names — the matches it
//! yields must be **exactly** the full-scan-and-unify set, and every lazily
//! built index must stay consistent through arbitrary insert/remove churn.
//!
//! The suite drives randomized stores (first-order and HiLog-shaped atoms,
//! duplicate keys, shared argument values) and randomized patterns (argument
//! subsets opened to variables, variable predicate names), comparing three
//! answers per probe:
//!
//! 1. the indexed `candidates` path (indexes built lazily by the probes
//!    themselves, maintained incrementally by the mutations);
//! 2. the same call under `scan_only_guard` (the pre-index baseline);
//! 3. a brute-force match over `store.iter()`.
//!
//! Seeds are pinned (`SEED_BASE` + case index) so failures reproduce;
//! `HILOG_INDEX_ORACLE_CASES` scales the case count up in CI.

use hilog_engine::horn::{scan_only_guard, AtomStore};
use hilog_repro::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

const SEED_BASE: u64 = 0x00A7_0A57;

fn cases() -> u64 {
    std::env::var("HILOG_INDEX_ORACLE_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60)
}

const FUNCTORS: &[&str] = &["move", "edge", "game", "winning", "p", "q"];
const CONSTANTS: &[&str] = &["a", "b", "c", "d", "e", "hub", "n1", "n2"];

/// A random ground atom: first-order (`f(c, ...)`) with arity 0..=3, a bare
/// symbol, or HiLog-shaped (`winning(g)(c)` — a compound predicate name).
fn random_atom(rng: &mut StdRng) -> Term {
    let constant = |rng: &mut StdRng| -> Term {
        if rng.gen_bool(0.2) {
            Term::int(rng.gen_range(0..5))
        } else {
            Term::sym(CONSTANTS[rng.gen_range(0..CONSTANTS.len())])
        }
    };
    match rng.gen_range(0..10u32) {
        0 => Term::sym(FUNCTORS[rng.gen_range(0..FUNCTORS.len())]),
        1 | 2 => {
            // HiLog: compound name applied to one argument.
            let name = Term::apps(
                FUNCTORS[rng.gen_range(0..FUNCTORS.len())],
                vec![constant(rng)],
            );
            Term::app(name, vec![constant(rng)])
        }
        _ => {
            let arity = rng.gen_range(0..4usize);
            Term::apps(
                FUNCTORS[rng.gen_range(0..FUNCTORS.len())],
                (0..arity).map(|_| constant(rng)).collect(),
            )
        }
    }
}

/// A random pattern: take an atom shape and open a random subset of argument
/// positions (sometimes the predicate name too) to variables.
fn random_pattern(rng: &mut StdRng, population: &[Term]) -> Term {
    let template = if population.is_empty() || rng.gen_bool(0.3) {
        random_atom(rng)
    } else {
        population[rng.gen_range(0..population.len())].clone()
    };
    let name = if rng.gen_bool(0.15) {
        Term::var("P")
    } else {
        template.name().clone()
    };
    if template.args().is_empty() && template.arity().is_none() {
        return template;
    }
    let args: Vec<Term> = template
        .args()
        .iter()
        .enumerate()
        .map(|(i, arg)| {
            if rng.gen_bool(0.5) {
                Term::var(format!("X{i}"))
            } else {
                arg.clone()
            }
        })
        .collect();
    Term::app(name, args)
}

/// The matches of `pattern` via whatever path `candidates` takes.
fn via_candidates(store: &AtomStore, pattern: &Term) -> BTreeSet<Term> {
    store
        .candidates(pattern)
        .filter(|c| {
            let mut theta = Substitution::new();
            hilog_core::unify::match_with(pattern, c, &mut theta)
        })
        .cloned()
        .collect()
}

/// Brute-force oracle: match every stored atom.
fn via_full_scan(store: &AtomStore, pattern: &Term) -> BTreeSet<Term> {
    store
        .iter()
        .filter(|c| {
            let mut theta = Substitution::new();
            hilog_core::unify::match_with(pattern, c, &mut theta)
        })
        .cloned()
        .collect()
}

fn check_pattern(store: &AtomStore, pattern: &Term, seed: u64) {
    let indexed = via_candidates(store, pattern);
    let scanned = {
        let _guard = scan_only_guard();
        via_candidates(store, pattern)
    };
    let brute = via_full_scan(store, pattern);
    assert_eq!(
        indexed, brute,
        "seed {seed}: indexed candidates diverge from the full scan for `{pattern}`"
    );
    assert_eq!(
        scanned, brute,
        "seed {seed}: scan-only candidates diverge from the full scan for `{pattern}`"
    );
}

#[test]
fn candidates_via_any_index_equal_the_scan_and_unify_filter() {
    for case in 0..cases() {
        let seed = SEED_BASE + case;
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(5..120usize);
        let atoms: Vec<Term> = (0..n).map(|_| random_atom(&mut rng)).collect();
        let store = AtomStore::from_atoms(atoms.iter().cloned());
        for _ in 0..12 {
            let pattern = random_pattern(&mut rng, &atoms);
            check_pattern(&store, &pattern, seed);
        }
    }
}

#[test]
fn insert_and_remove_keep_every_lazily_built_index_consistent() {
    for case in 0..cases() {
        let seed = SEED_BASE ^ (0x5EED << 16) ^ case;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = AtomStore::new();
        // Mirror model: the plain set the store must stay equivalent to.
        let mut mirror: BTreeSet<Term> = BTreeSet::new();
        let mut population: Vec<Term> = (0..40).map(|_| random_atom(&mut rng)).collect();
        for step in 0..60 {
            let atom = population[rng.gen_range(0..population.len())].clone();
            if rng.gen_bool(0.6) {
                assert_eq!(
                    store.insert(atom.clone()),
                    mirror.insert(atom.clone()),
                    "seed {seed} step {step}: insert novelty diverged for `{atom}`"
                );
            } else {
                assert_eq!(
                    store.remove(&atom),
                    mirror.remove(&atom),
                    "seed {seed} step {step}: remove presence diverged for `{atom}`"
                );
            }
            if rng.gen_bool(0.15) {
                population.push(random_atom(&mut rng));
            }
            // Probing *during* the mutation sequence is the point: it forces
            // indexes to exist early, so later inserts/removes must maintain
            // them rather than rebuild them.
            let pattern = random_pattern(&mut rng, &population);
            check_pattern(&store, &pattern, seed);
            assert_eq!(store.len(), mirror.len(), "seed {seed} step {step}");
            assert_eq!(
                store.atoms(),
                &mirror,
                "seed {seed} step {step}: atom set diverged"
            );
        }
        // Final sweep over every population member, bound and open.
        for atom in &population {
            assert_eq!(store.contains(atom), mirror.contains(atom));
            check_pattern(&store, atom, seed);
        }
    }
}
