//! Section 6: modular stratification (Figure 1, Theorem 6.1, Lemma 6.2) and
//! the query-directed evaluation of Section 6.1, exercised over generated
//! game workloads through the `HiLogDb` session facade.

use hilog_core::interpretation::Model;
use hilog_engine::session::{HiLogDb, Semantics};
use hilog_engine::EngineError;
use hilog_syntax::parse_term;
use hilog_workloads::{
    chain, cycle, hilog_game_program, layered_game_graph, node_name, normal_game_program,
    random_dag,
};
use proptest::prelude::*;

/// Well-founded model through the session facade.
fn wfs(program: &hilog_core::Program) -> Result<Model, EngineError> {
    Ok(HiLogDb::new(program.clone()).model()?.clone())
}

/// Theorem 6.1: a modularly stratified HiLog program has a total well-founded
/// model that is its unique stable model, and the Figure 1 procedure computes
/// exactly that model.
fn check_theorem_6_1(program: &hilog_core::Program) {
    let mut db = HiLogDb::builder()
        .program(program.clone())
        .semantics(Semantics::ModularCheck)
        .build();
    let outcome = db.check_modular().unwrap();
    assert!(outcome.modularly_stratified, "{:?}", outcome.reason);
    let figure1 = db.model().unwrap().clone();
    assert!(figure1.is_total());
    let wfm = wfs(program).unwrap();
    assert!(wfm.is_total());
    for atom in wfm.base() {
        assert_eq!(figure1.truth(atom), wfm.truth(atom), "{atom}");
    }
    let mut stable_db = HiLogDb::new(program.clone());
    let stable = stable_db.stable_models().unwrap();
    assert_eq!(stable.len(), 1);
    for atom in wfm.base() {
        assert_eq!(stable[0].truth(atom), wfm.truth(atom), "{atom}");
    }
}

#[test]
fn theorem_6_1_on_dag_games() {
    for (n, seed) in [(8, 1), (16, 2), (32, 3)] {
        let program = hilog_game_program(&[("g1", random_dag(n, 2.0, seed)), ("g2", chain(n / 2))]);
        check_theorem_6_1(&program);
    }
}

#[test]
fn theorem_6_1_on_layered_games() {
    let program = hilog_game_program(&[("layers", layered_game_graph(5, 4, 2, 9))]);
    check_theorem_6_1(&program);
}

#[test]
fn lemma_6_2_normal_games() {
    // For normal programs the HiLog procedure coincides with modular
    // stratification: acyclic games accepted, cyclic games rejected.
    let acyclic = normal_game_program(&random_dag(24, 2.0, 5));
    let outcome = HiLogDb::new(acyclic).check_modular().unwrap().clone();
    assert!(outcome.modularly_stratified);
    let cyclic = normal_game_program(&cycle(6));
    let outcome = HiLogDb::new(cyclic).check_modular().unwrap().clone();
    assert!(!outcome.modularly_stratified);
}

#[test]
fn query_evaluation_agrees_with_wfs_on_every_position() {
    let edges = random_dag(40, 2.5, 13);
    let program = hilog_game_program(&[("g", edges)]);
    let wfm = wfs(&program).unwrap();
    let mut db = HiLogDb::new(program);
    for i in 0..40 {
        let atom = parse_term(&format!("winning(g)({})", node_name(i))).unwrap();
        assert_eq!(
            db.holds(&atom).unwrap().is_true(),
            wfm.is_true(&atom),
            "disagreement at position {i}"
        );
    }
}

#[test]
fn point_queries_do_less_work_than_full_evaluation() {
    // Two games; the query touches only one of them.  The number of answers
    // tabled by the query evaluator must be well below the size of the full
    // relevant base (the relevance property the magic-sets method is for).
    let program = hilog_game_program(&[("small", chain(10)), ("large", random_dag(300, 2.5, 21))]);
    let wfm = wfs(&program).unwrap();
    let mut db = HiLogDb::new(program);
    let atom = parse_term(&format!("winning(small)({})", node_name(0))).unwrap();
    let result = db.query(&hilog_core::rule::Query::atom(atom)).unwrap();
    assert!(result.plan.is_magic_sets());
    assert!(
        result.stats.answers * 4 < wfm.base().len(),
        "expected a selective query to table far fewer atoms ({} tabled vs {} base atoms)",
        result.stats.answers,
        wfm.base().len()
    );
}

#[test]
fn repeated_point_queries_are_answered_from_session_tables() {
    let program = hilog_game_program(&[("g", random_dag(30, 2.0, 4))]);
    let mut db = HiLogDb::new(program);
    let query = hilog_core::rule::Query::atom(
        parse_term(&format!("winning(g)({})", node_name(0))).unwrap(),
    );
    let first = db.query(&query).unwrap();
    assert!(first.stats.rule_applications > 0);
    let second = db.query(&query).unwrap();
    assert_eq!(second.stats.rule_applications, 0);
    assert!(second.stats.cached_subqueries > 0);
    assert_eq!(second.truth, first.truth);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random acyclic games are always modularly stratified, with total
    /// models agreeing across all evaluation paths; random cyclic games are
    /// never modularly stratified (their reduced winning component contains a
    /// negative cycle), although their WFS may still be three-valued.
    #[test]
    fn figure_1_accepts_exactly_the_acyclic_games(
        n in 4usize..24,
        seed in 0u64..1_000,
    ) {
        let acyclic = normal_game_program(&random_dag(n, 2.0, seed));
        let outcome = HiLogDb::new(acyclic).check_modular().unwrap().clone();
        prop_assert!(outcome.modularly_stratified, "{:?}", outcome.reason);

        let cyclic = normal_game_program(&cycle(n));
        let outcome = HiLogDb::new(cyclic).check_modular().unwrap().clone();
        prop_assert!(!outcome.modularly_stratified);
    }

    /// The Figure 1 model always matches the directly computed well-founded
    /// model on HiLog games (Theorem 6.1, property form).
    #[test]
    fn figure_1_model_matches_wfs(n in 4usize..16, seed in 0u64..1_000) {
        let program = hilog_game_program(&[("g", random_dag(n, 2.0, seed))]);
        let mut db = HiLogDb::builder()
            .program(program.clone())
            .semantics(Semantics::ModularCheck)
            .build();
        prop_assert!(db.check_modular().unwrap().modularly_stratified);
        let figure1 = db.model().unwrap().clone();
        let wfm = wfs(&program).unwrap();
        for atom in wfm.base() {
            prop_assert_eq!(figure1.truth(atom), wfm.truth(atom), "{}", atom);
        }
    }
}
