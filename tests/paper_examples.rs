//! End-to-end checks of every numbered example in the paper, exercised
//! through the public API of the workspace crates (queries and models go
//! through the `HiLogDb` session facade).

use hilog_core::interpretation::Truth;
use hilog_core::restriction::ProgramClass;
use hilog_engine::horn::{least_model, EvalOptions, NegationMode};
use hilog_engine::session::HiLogDb;
use hilog_engine::wfs::well_founded_model_over_universe;
use hilog_syntax::{parse_program, parse_query, parse_term};

fn db(text: &str) -> HiLogDb {
    HiLogDb::new(parse_program(text).unwrap())
}

fn truth(text: &str, atom: &str) -> Truth {
    db(text).model().unwrap().truth(&parse_term(atom).unwrap())
}

/// Example 2.1: the generic transitive closure.
#[test]
fn example_2_1_generic_transitive_closure() {
    let program = parse_program(
        "tc(G)(X, Y) :- graph(G), G(X, Y).\n\
         tc(G)(X, Y) :- graph(G), G(X, Z), tc(G)(Z, Y).\n\
         graph(e). e(a, b). e(b, c). e(c, d).",
    )
    .unwrap();
    let model = least_model(&program, NegationMode::Forbid, EvalOptions::default()).unwrap();
    assert!(model.contains(&parse_term("tc(e)(a, d)").unwrap()));
    assert!(!model.contains(&parse_term("tc(e)(d, a)").unwrap()));
    // One may call tc(e)(X, Y) for some ground term e — and the call is a
    // range-restricted query.
    let report = ProgramClass::classify(&program);
    assert!(report.strongly_range_restricted);
}

/// Example 2.2: maplist, answered by the query-directed evaluator.
#[test]
fn example_2_2_maplist() {
    let program = parse_program(
        "maplist(F)([], []) :- fun(F).\n\
         maplist(F)([X | R], [Y | Z]) :- F(X, Y), maplist(F)(R, Z).\n\
         fun(double). double(one, two). double(two, four).",
    )
    .unwrap();
    let result = HiLogDb::new(program)
        .query(&parse_query("?- maplist(double)([one, two, one], L).").unwrap())
        .unwrap();
    assert_eq!(result.answers.len(), 1);
    assert_eq!(
        result.answers[0].binding("L").unwrap().to_string(),
        "[two, four, two]"
    );
}

/// Example 3.1: the well-founded model leaves `u` undefined and there is no
/// stable model.
#[test]
fn example_3_1_wfs_and_stable() {
    let text = "p :- q. q :- p. r :- s, not p. s. t :- not r. u :- not u.";
    assert_eq!(truth(text, "s"), Truth::True);
    assert_eq!(truth(text, "r"), Truth::True);
    assert_eq!(truth(text, "p"), Truth::False);
    assert_eq!(truth(text, "q"), Truth::False);
    assert_eq!(truth(text, "t"), Truth::False);
    assert_eq!(truth(text, "u"), Truth::Undefined);
    let models = db(text).stable_models().unwrap().to_vec();
    assert!(models.is_empty(), "u :- not u destroys all stable models");
}

/// Example 3.2: two stable models, everything undefined in the WFS.
#[test]
fn example_3_2_two_stable_models() {
    let text = "p :- not q. q :- not p. r :- p. r :- q. t :- p, not p.";
    for atom in ["p", "q", "r", "t"] {
        assert_eq!(truth(text, atom), Truth::Undefined, "{atom}");
    }
    let models = db(text).stable_models().unwrap().to_vec();
    assert_eq!(models.len(), 2);
    for m in &models {
        assert!(m.is_true(&parse_term("r").unwrap()));
        assert!(m.is_false(&parse_term("t").unwrap()));
    }
}

/// Example 4.1: the HiLog semantics differs from the normal semantics for
/// non-range-restricted programs.
#[test]
fn example_4_1_hilog_vs_normal_universe() {
    use hilog_core::herbrand::{HerbrandBounds, HerbrandUniverse};
    let program = parse_program("p :- not q(X). q(a).").unwrap();
    let normal = HerbrandUniverse::normal(&program, HerbrandBounds::default());
    let m_normal =
        well_founded_model_over_universe(&program, normal.terms(), EvalOptions::default()).unwrap();
    assert_eq!(m_normal.truth(&parse_term("p").unwrap()), Truth::False);

    let hilog = HerbrandUniverse::hilog(&program, HerbrandBounds::new(2, 1, 100));
    let m_hilog =
        well_founded_model_over_universe(&program, hilog.terms(), EvalOptions::default()).unwrap();
    assert_eq!(m_hilog.truth(&parse_term("p").unwrap()), Truth::True);

    // The second program of Example 4.1: p(X, X, a) has an infinite HiLog
    // model; over the bounded slice every instantiation of X is true.
    let program2 = parse_program("p(X, X, a).").unwrap();
    let slice = HerbrandUniverse::hilog(&program2, HerbrandBounds::new(1, 0, 10));
    let m2 =
        well_founded_model_over_universe(&program2, slice.terms(), EvalOptions::default()).unwrap();
    assert!(m2.is_true(&parse_term("p(a, a, a)").unwrap()));
    assert!(m2.is_true(&parse_term("p(p, p, a)").unwrap()));
}

/// Example 5.1 is checked in `preservation.rs`; Example 5.3's classification
/// table is checked exhaustively in the core crate's unit tests.  Here we
/// re-check one representative of each class through the public API.
#[test]
fn example_5_3_classification_representatives() {
    let strongly = parse_program("tc(G, X, Y) :- graph(G), G(X, Y).").unwrap();
    let rr_only = parse_program("tc(G)(X, Y) :- G(X, Y).").unwrap();
    let not_rr = parse_program("p(X) :- X(a).").unwrap();
    assert!(ProgramClass::classify(&strongly).strongly_range_restricted);
    let rr_report = ProgramClass::classify(&rr_only);
    assert!(rr_report.range_restricted_hilog && !rr_report.strongly_range_restricted);
    let bad_report = ProgramClass::classify(&not_rr);
    assert!(!bad_report.range_restricted_hilog);
}

/// Example 6.1: the win/move game — not stratified, not locally stratified,
/// but modularly stratified when the move relation is acyclic.
#[test]
fn example_6_1_win_move() {
    let acyclic =
        parse_program("winning(X) :- move(X, Y), not winning(Y). move(a, b). move(b, c).").unwrap();
    assert!(!hilog_core::analysis::is_stratified(&acyclic));
    let outcome = HiLogDb::new(acyclic).check_modular().unwrap().clone();
    assert!(outcome.modularly_stratified);
    assert!(outcome.model.unwrap().is_total());

    let cyclic =
        parse_program("winning(X) :- move(X, Y), not winning(Y). move(a, b). move(b, a).").unwrap();
    let outcome = HiLogDb::new(cyclic).check_modular().unwrap().clone();
    assert!(!outcome.modularly_stratified);
}

/// Example 6.3: the parameterised game program, with the well-founded model,
/// the Figure 1 model and the query evaluator all agreeing.
#[test]
fn example_6_3_parameterised_game() {
    let text = "winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).\n\
                game(move1). game(move2).\n\
                move1(a, b). move1(b, c). move1(a, c).\n\
                move2(x, y). move2(y, z).";
    let program = parse_program(text).unwrap();
    let wfm = HiLogDb::new(program.clone()).model().unwrap().clone();
    assert!(wfm.is_total());
    let mut session = HiLogDb::new(program.clone());
    let outcome = session.check_modular().unwrap().clone();
    assert!(outcome.modularly_stratified);
    let figure1 = outcome.model.unwrap();
    for atom in wfm.base() {
        assert_eq!(figure1.truth(atom), wfm.truth(atom), "{atom}");
        if atom.to_string().starts_with("winning") {
            assert_eq!(
                session.holds(atom).unwrap().is_true(),
                wfm.is_true(atom),
                "{atom}"
            );
        }
    }
}

/// Example 6.4: total well-founded model, but not modularly stratified.
#[test]
fn example_6_4_not_modularly_stratified() {
    let text = "p(X) :- t(X, Y, Z, P), not p(Y), not p(Z).\n\
                t(a, b, a, p).\n\
                t(c, a, b, p).\n\
                p(b) :- t(X, Y, b, P).";
    let program = parse_program(text).unwrap();
    let mut session = HiLogDb::new(program);
    let wfm = session.model().unwrap().clone();
    assert!(wfm.is_total());
    assert_eq!(wfm.truth(&parse_term("p(b)").unwrap()), Truth::True);
    assert_eq!(wfm.truth(&parse_term("p(a)").unwrap()), Truth::False);
    let outcome = session.check_modular().unwrap();
    assert!(!outcome.modularly_stratified);
}

/// Example 6.6: the magic-sets rewriting of the abbreviated game program has
/// the documented shape.
#[test]
fn example_6_6_magic_rewriting_shape() {
    let program = parse_program("w(M)(X) :- g(M), M(X, Y), not w(M)(Y). g(m). m(a, b).").unwrap();
    let magic =
        hilog_engine::magic::magic_transform(&program, &parse_query("?- w(m)(a).").unwrap())
            .unwrap();
    let text = magic.full_program().to_string();
    assert!(text.contains("magic(w(m)(a), '+')."));
    assert!(text.contains("magic(w(M)(Y), '-')"));
    assert!(text.contains("dn(w(M)(X), w(M)(Y))"));
    assert!(text.contains("dp(w(M)(X), g(M))"));
}

/// The parts-explosion program of Section 6 (bicycle / wheels / spokes).
#[test]
fn section_6_parts_explosion() {
    let program = hilog_engine::aggregate::parts_explosion_program(
        &[("m", "parts")],
        &[
            ("parts", "bicycle", "wheel", 2),
            ("parts", "wheel", "spoke", 47),
        ],
    );
    let result =
        hilog_engine::aggregate::evaluate_aggregate_program(&program, EvalOptions::default())
            .unwrap();
    assert!(result
        .model
        .is_true(&parse_term("contains(m, bicycle, spoke, 94)").unwrap()));
}
