//! Differential oracle for parallel evaluation: at every thread count the
//! engine must produce *exactly* the model, stable sets, and query answers
//! of the serial path.
//!
//! `EvalOptions::eval_threads = 1` runs the pre-parallel serial evaluator
//! unchanged, so these tests pin the SCC-wave fixpoint, the wave-parallel
//! model patching, and the partitioned semi-naive rounds against it on the
//! same randomized program families as `tests/differential.rs` — the pinned
//! regression corpus in `tests/corpus/differential_seeds.txt` always runs
//! first, and `HILOG_PARALLEL_CASES` scales the total case count in CI.
//!
//! Determinism is checked separately from agreement: repeated evaluations at
//! the *same* thread count (and across different thread counts) must yield
//! byte-identical answer/truth/plan JSON and identical model iteration
//! order.  Evaluation statistics are deliberately excluded from those
//! comparisons — the pooled-task counters are process-wide and legitimately
//! vary with scheduling — which is exactly why the determinism guarantee is
//! stated over answers, not over stats.

use hilog_repro::prelude::*;
use hilog_workloads::random_programs::{
    random_range_restricted_normal, random_strongly_restricted_hilog, HilogProgramConfig,
    NormalProgramConfig,
};
use hilog_workloads::{sharded_chain_game_program, sharded_game_program};

/// Thread counts every oracle runs at; `1` is the serial reference.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The committed regression corpus shared with `tests/differential.rs`.
fn pinned_seeds() -> Vec<u64> {
    include_str!("corpus/differential_seeds.txt")
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| l.trim().parse().expect("corpus seeds are integers"))
        .collect()
}

/// Pinned seeds plus `extra` generated ones; `HILOG_PARALLEL_CASES`
/// overrides the *total* case count (never dropping below the corpus).
fn seeds(extra: usize) -> Vec<u64> {
    let pinned = pinned_seeds();
    let total = std::env::var("HILOG_PARALLEL_CASES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(pinned.len() + extra)
        .max(pinned.len());
    let mut out = pinned;
    let mut next = 2_000_000u64;
    while out.len() < total {
        out.push(next);
        next += 1;
    }
    out
}

/// A session evaluating with exactly `threads` worker threads.
fn db_with_threads(program: Program, threads: usize) -> HiLogDb {
    HiLogDb::builder()
        .program(program)
        .options(EvalOptions::with_eval_threads(threads))
        .build()
}

#[test]
fn normal_programs_have_thread_count_independent_models() {
    for seed in seeds(20) {
        let program = random_range_restricted_normal(NormalProgramConfig::default(), seed);
        let serial = db_with_threads(program.clone(), 1)
            .model()
            .expect("serial model evaluates")
            .clone();
        for threads in THREAD_COUNTS {
            let parallel = db_with_threads(program.clone(), threads)
                .model()
                .expect("parallel model evaluates")
                .clone();
            assert_eq!(
                parallel, serial,
                "threads={threads} diverged from serial (seed {seed}, normal)"
            );
        }
    }
}

#[test]
fn hilog_programs_have_thread_count_independent_models() {
    for seed in seeds(0) {
        let program = random_strongly_restricted_hilog(HilogProgramConfig::default(), seed);
        let serial = db_with_threads(program.clone(), 1)
            .model()
            .expect("serial model evaluates")
            .clone();
        for threads in THREAD_COUNTS {
            let parallel = db_with_threads(program.clone(), threads)
                .model()
                .expect("parallel model evaluates")
                .clone();
            assert_eq!(
                parallel, serial,
                "threads={threads} diverged from serial (seed {seed}, HiLog)"
            );
        }
    }
}

#[test]
fn stable_models_are_thread_count_independent() {
    // Stable-set enumeration shares the session's grounding with the
    // parallel well-founded path; the enumerated models must not depend on
    // the evaluation thread count either.
    for seed in seeds(0).into_iter().take(20) {
        let program = random_range_restricted_normal(NormalProgramConfig::default(), seed);
        let mut serial = db_with_threads(program.clone(), 1);
        let reference = serial.stable_models().expect("serial stable sets").to_vec();
        for threads in THREAD_COUNTS {
            let mut db = db_with_threads(program.clone(), threads);
            let models = db.stable_models().expect("parallel stable sets");
            assert_eq!(
                models,
                &reference[..],
                "stable sets diverge at threads={threads} (seed {seed})"
            );
        }
    }
}

#[test]
fn bound_queries_agree_across_thread_counts() {
    // Instance-level oracle: every ground atom of the serial model receives
    // the same three-valued verdict from a parallel session's magic-sets
    // route (which exercises the partitioned semi-naive rounds).
    for seed in seeds(0).into_iter().take(25) {
        let program = random_range_restricted_normal(NormalProgramConfig::default(), seed);
        let model = db_with_threads(program.clone(), 1)
            .model()
            .expect("serial model evaluates")
            .clone();
        for threads in [2, 4, 8] {
            let mut magic = db_with_threads(program.clone(), threads);
            for atom in model.base() {
                let result = magic
                    .query(&Query::atom(atom.clone()))
                    .expect("bound query evaluates");
                assert_eq!(
                    result.truth,
                    model.truth(atom),
                    "bound query diverges on `{atom}` at threads={threads} (seed {seed})"
                );
            }
        }
    }
}

#[test]
fn incremental_patching_agrees_across_thread_counts() {
    // The wave-parallel patch path against the serial patch path: the same
    // assertion sequence applied to sessions at every thread count must
    // pass through identical models at every step.
    for seed in seeds(0).into_iter().take(25) {
        let program = random_strongly_restricted_hilog(HilogProgramConfig::default(), seed);
        let mut sessions: Vec<(usize, HiLogDb)> = THREAD_COUNTS
            .iter()
            .map(|&t| (t, db_with_threads(program.clone(), t)))
            .collect();
        for (_, db) in &mut sessions {
            db.model().expect("warm the caches");
        }
        for step in 0..3u64 {
            let fact = parse_term(&format!("r0(c0, c{})", 1 + ((seed + step) % 3))).unwrap();
            let mut reference: Option<Model> = None;
            for (threads, db) in &mut sessions {
                db.assert_fact(fact.clone()).expect("fact asserts");
                let patched = db.model().expect("patched model").clone();
                match &reference {
                    None => reference = Some(patched),
                    Some(expected) => assert_eq!(
                        &patched, expected,
                        "patched model diverges at threads={threads} \
                         (seed {seed}, step {step})"
                    ),
                }
            }
        }
    }
}

/// The stable observable part of a query result: answers, overall truth,
/// plan, and fallback — everything except the stats member, whose pooled
/// counters are process-wide and may vary between runs.
fn observable_json(result: &QueryResult) -> Vec<(String, String)> {
    let full: serde_json::Value =
        serde_json::from_str(&serde_json::to_string(result).unwrap()).unwrap();
    ["answers", "truth", "plan", "fallback"]
        .iter()
        .map(|m| {
            (
                m.to_string(),
                serde_json::to_string(full.get(m).expect("member present")).unwrap(),
            )
        })
        .collect()
}

#[test]
fn query_results_are_deterministic_within_and_across_thread_counts() {
    // Deep chains maximise wave count, the random-DAG shards maximise
    // per-wave width; both must answer identically — bytes included — on
    // every run at every thread count.
    let programs = [
        ("chain", sharded_chain_game_program(3, 60)),
        ("dag", sharded_game_program(4, 12, 7)),
    ];
    for (family, program) in programs {
        let queries = ["?- winning0(X).", "?- winning1(X).", "?- move2(X, Y)."];
        let mut reference: Option<Vec<Vec<(String, String)>>> = None;
        for threads in THREAD_COUNTS {
            for run in 0..2 {
                let mut db = db_with_threads(program.clone(), threads);
                let observed: Vec<_> = queries
                    .iter()
                    .map(|q| {
                        let result = db.query(&parse_query(q).unwrap()).expect("query evaluates");
                        observable_json(&result)
                    })
                    .collect();
                match &reference {
                    None => reference = Some(observed),
                    Some(expected) => assert_eq!(
                        &observed, expected,
                        "nondeterministic answers ({family}, threads={threads}, run {run})"
                    ),
                }
            }
        }
    }
}

#[test]
fn model_iteration_order_is_thread_count_independent() {
    let program = sharded_chain_game_program(4, 50);
    let mut reference: Option<Vec<String>> = None;
    for threads in THREAD_COUNTS {
        let mut db = db_with_threads(program.clone(), threads);
        let model = db.model().expect("model evaluates");
        let order: Vec<String> = model
            .base()
            .iter()
            .chain(model.true_atoms().iter())
            .chain(model.undefined_atoms().iter())
            .map(|t| t.to_string())
            .collect();
        match &reference {
            None => reference = Some(order),
            Some(expected) => assert_eq!(
                &order, expected,
                "model iteration order changed at threads={threads}"
            ),
        }
    }
}
