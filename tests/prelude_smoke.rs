//! Workspace-level smoke test for the umbrella crate: the re-export surface
//! of `hilog_repro::prelude` alone must be enough to drive the full pipeline
//! — parse a HiLog program, ground it, and compute its well-founded model.

use hilog_repro::prelude::*;

/// Example 6.1 of the paper (the win/move game over an acyclic move graph),
/// driven end-to-end through the prelude only.
#[test]
fn prelude_covers_parse_ground_wfs_pipeline() {
    let program = parse_program(
        "winning(X) :- move(X, Y), not winning(Y).\n\
         move(a, b). move(b, c).",
    )
    .expect("the win/move program parses");

    let ground = relevant_ground(&program, EvalOptions::default()).expect("grounding succeeds");
    assert!(
        !ground.is_empty(),
        "relevant grounding produces instantiated rules"
    );

    let mut db = HiLogDb::new(program);
    let model = db.model().expect("WFS converges").clone();
    let winning_a = parse_term("winning(a)").expect("parses");
    let winning_b = parse_term("winning(b)").expect("parses");
    let winning_c = parse_term("winning(c)").expect("parses");
    // c has no moves, so c is lost; b -> c reaches a lost position, so b
    // wins; a's only move reaches the winning position b, so a is lost.
    assert_eq!(model.truth(&winning_b), Truth::True);
    assert_eq!(model.truth(&winning_c), Truth::False);
    assert_eq!(model.truth(&winning_a), Truth::False);
    assert!(model.is_total(), "acyclic game has a total WFS model");
}

/// The prelude also exposes the session facade (modular check and queries);
/// exercise it on the same program.
#[test]
fn prelude_covers_the_session_facade() {
    let program = parse_program(
        "winning(X) :- move(X, Y), not winning(Y).\n\
         move(a, b). move(b, c).",
    )
    .expect("parses");

    let mut db = HiLogDb::builder()
        .program(program)
        .semantics(Semantics::WellFounded)
        .build();
    let outcome = db.check_modular().expect("Figure 1 procedure runs");
    assert!(outcome.modularly_stratified);

    let query = parse_query("winning(b)").expect("query parses");
    assert!(db.explain(&query).is_magic_sets());
    let result = db.query(&query).expect("query evaluates");
    assert_eq!(
        result.answers.len(),
        1,
        "ground true query has one (empty) answer"
    );
    assert!(result.is_true());
    assert!(
        result.stats.rule_applications > 0,
        "evaluation did real work"
    );
}
