//! Section 5: preservation under extensions (Theorems 5.3 and 5.4) checked
//! over generated program families, plus the paper's counterexamples.

use hilog_engine::extension::{preserved_by_extension_stable, preserved_by_extension_wfs};
use hilog_engine::horn::EvalOptions;
use hilog_engine::stable::StableOptions;
use hilog_syntax::parse_program;
use hilog_workloads::random_programs::{
    random_ground_extension, random_range_restricted_normal, random_strongly_restricted_hilog,
    ExtensionConfig, HilogProgramConfig, NormalProgramConfig,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Theorem 5.3: the well-founded semantics of range-restricted HiLog
    /// programs is preserved under extensions.
    #[test]
    fn theorem_5_3_wfs_preserved_for_strongly_restricted_hilog(
        program_seed in 0u64..5_000,
        extension_seed in 0u64..5_000,
    ) {
        let program = random_strongly_restricted_hilog(HilogProgramConfig::default(), program_seed);
        let extension = random_ground_extension(ExtensionConfig::default(), extension_seed);
        let verdict = preserved_by_extension_wfs(&program, &extension, EvalOptions::default())
            .expect("checkable");
        prop_assert!(
            verdict.preserved,
            "violations {:?} for seeds ({}, {})",
            verdict.violations, program_seed, extension_seed
        );
    }

    /// Theorem 5.4: the stable-model semantics of strongly range-restricted
    /// HiLog programs is preserved under extensions.
    #[test]
    fn theorem_5_4_stable_preserved_for_strongly_restricted_hilog(
        program_seed in 0u64..5_000,
        extension_seed in 0u64..5_000,
    ) {
        let program = random_strongly_restricted_hilog(
            HilogProgramConfig { relation_names: 2, constants: 3, facts_per_relation: 3, with_negation: true },
            program_seed,
        );
        let extension = random_ground_extension(ExtensionConfig::default(), extension_seed);
        let verdict = preserved_by_extension_stable(
            &program,
            &extension,
            EvalOptions::default(),
            StableOptions::default(),
        )
        .expect("checkable");
        prop_assert!(verdict.preserved, "seeds ({program_seed}, {extension_seed})");
    }

    /// Lemma 5.1 (one direction): range-restricted *normal* programs are
    /// preserved under extensions as well (they are domain independent and
    /// the two notions coincide for normal programs).
    #[test]
    fn normal_range_restricted_programs_are_preserved(
        program_seed in 0u64..5_000,
        extension_seed in 0u64..5_000,
    ) {
        let program = random_range_restricted_normal(NormalProgramConfig::default(), program_seed);
        let extension = random_ground_extension(ExtensionConfig::default(), extension_seed);
        let verdict = preserved_by_extension_wfs(&program, &extension, EvalOptions::default())
            .expect("checkable");
        prop_assert!(verdict.preserved, "violations {:?}", verdict.violations);
    }
}

/// Example 5.1: the counterexample program is *not* preserved, for both
/// semantics, under the specific extension the paper gives — and also under a
/// family of similar two-fact extensions.
#[test]
fn example_5_1_counterexample() {
    let program = parse_program("p :- X(Y), Y(X).").unwrap();
    for (a, b) in [("q", "r"), ("alpha", "beta"), ("f1", "f2")] {
        let extension = parse_program(&format!("{a}({b}). {b}({a}).")).unwrap();
        let wfs = preserved_by_extension_wfs(&program, &extension, EvalOptions::default()).unwrap();
        assert!(!wfs.preserved, "extension {a}/{b}");
        let stable = preserved_by_extension_stable(
            &program,
            &extension,
            EvalOptions::default(),
            StableOptions::default(),
        )
        .unwrap();
        assert!(!stable.preserved, "extension {a}/{b}");
    }
    // A *one*-directional pair does not make p true, so it is preserved:
    // the violation really needs the X(Y), Y(X) cycle.
    let one_way = parse_program("q(r).").unwrap();
    let verdict = preserved_by_extension_wfs(&program, &one_way, EvalOptions::default()).unwrap();
    assert!(verdict.preserved);
}

/// The remark after Theorem 5.4: a range-restricted (but not strongly
/// range-restricted) program whose stable models are destroyed by a
/// symbol-disjoint extension.
#[test]
fn theorem_5_4_needs_strong_range_restriction() {
    let program = parse_program("X(a) :- X(X), not X(a).").unwrap();
    let extension = parse_program("r(r).").unwrap();
    let verdict = preserved_by_extension_stable(
        &program,
        &extension,
        EvalOptions::default(),
        StableOptions::default(),
    )
    .unwrap();
    assert!(!verdict.preserved);
    // The well-founded semantics, by contrast, *is* preserved for this
    // range-restricted program (Theorem 5.3 needs only range restriction).
    let wfs = preserved_by_extension_wfs(&program, &extension, EvalOptions::default()).unwrap();
    assert!(wfs.preserved, "violations: {:?}", wfs.violations);
}
