//! Crash/replay differential oracle for the durable storage layer, plus an
//! HTTP restart round-trip.
//!
//! The oracle's contract extends `tests/serving.rs` to crashes: a store
//! reopened after a simulated crash — writer dropped mid-stream, with or
//! without an intervening checkpoint, possibly with a *torn* final WAL
//! record — must answer every query exactly like a fresh single-threaded
//! [`HiLogDb`] built from the program the pre-crash writer had published.
//! Randomized mutation sequences come from the same distribution as
//! `tests/session_api.rs` (EDB/IDB fact asserts, present-fact retractions,
//! rule churn over random range-restricted normal programs), so recovery is
//! exercised on every incremental-maintenance path the session oracle
//! covers.
//!
//! Scaled up in CI via `HILOG_RECOVERY_CASES` (randomized cases to run).

use hilog_repro::prelude::*;
use hilog_store::{FaultIo, FaultPlan, Op, PersistentWriter, StoreConfig};
use hilog_workloads::random_programs::{random_range_restricted_normal, NormalProgramConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn temp_dir(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hilog-recovery-{tag}-{}-{case}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn answer_set(result: &QueryResult) -> BTreeSet<String> {
    result.answers.iter().map(|a| a.to_string()).collect()
}

/// The session-oracle comparison policy, applied across a crash: identical
/// answers with identical three-valued truth, identical overall truth, and
/// an identical fell-back-to-the-full-model verdict.
fn assert_results_agree(recovered: &QueryResult, reference: &QueryResult, context: &str) {
    assert_eq!(
        answer_set(recovered),
        answer_set(reference),
        "recovered and fresh sessions disagree {context}"
    );
    assert_eq!(recovered.truth, reference.truth, "{context}");
    assert_eq!(
        recovered.fallback.is_some(),
        reference.fallback.is_some(),
        "recovered and fresh sessions took different routes {context}"
    );
}

/// Rules as a sorted multiset: manifest recovery reconstructs the program
/// as non-fact rules followed by facts grouped per relation, so recovered
/// programs are order-permuted (never gaining or losing an occurrence —
/// duplicates back retract-one-occurrence semantics and must survive
/// exactly).  Rule order is semantically neutral, so equality up to
/// permutation is the right cross-recovery program check; the query
/// differential below covers semantics.
fn program_multiset(program: &hilog_core::Program) -> Vec<String> {
    let mut rules: Vec<String> = program.rules.iter().map(|r| r.to_string()).collect();
    rules.sort();
    rules
}

/// Draws one mutation batch from the `session_api` distribution, using the
/// writer's current program to aim retractions at entries that exist.
fn random_batch(rng: &mut StdRng, program: &hilog_core::Program) -> Vec<Op> {
    let constant = |i: usize| Term::sym(format!("c{i}"));
    let mut ops = Vec::new();
    for _ in 0..rng.gen_range(1..=3usize) {
        match rng.gen_range(0..10u32) {
            // Assert an EDB fact (the common serving mutation).
            0..=3 => ops.push(Op::AssertFact(Term::apps(
                format!("edb{}", rng.gen_range(0..2)),
                vec![constant(rng.gen_range(0..5)), constant(rng.gen_range(0..5))],
            ))),
            // Assert an IDB fact: stresses the non-pure-EDB delta path.
            4 => ops.push(Op::AssertFact(Term::apps(
                format!("idb{}", rng.gen_range(0..3)),
                vec![constant(rng.gen_range(0..5))],
            ))),
            // Retract a present fact, or (sometimes) a missing one.
            5..=6 => {
                let facts: Vec<Term> = program.facts().map(|r| r.head.clone()).collect();
                if facts.is_empty() || rng.gen_bool(0.2) {
                    ops.push(Op::RetractFact(Term::apps(
                        "edb0",
                        vec![Term::sym("nope"), Term::sym("nope")],
                    )));
                } else {
                    ops.push(Op::RetractFact(
                        facts[rng.gen_range(0..facts.len())].clone(),
                    ));
                }
            }
            // Assert a fresh rule (full invalidation path).
            7 => {
                let head = Term::apps(format!("idb{}", rng.gen_range(0..3)), vec![Term::var("X")]);
                let mut body = vec![Literal::pos(Term::apps(
                    format!("edb{}", rng.gen_range(0..2)),
                    vec![Term::var("X"), Term::var("Y")],
                ))];
                if rng.gen_bool(0.5) {
                    body.push(Literal::neg(Term::apps(
                        format!("idb{}", rng.gen_range(0..3)),
                        vec![Term::var("Y")],
                    )));
                }
                ops.push(Op::AssertRule(Rule::new(head, body)));
            }
            // Retract a present proper rule.
            _ => {
                let rules: Vec<Rule> = program.proper_rules().cloned().collect();
                if rules.is_empty() {
                    continue;
                }
                ops.push(Op::RetractRule(
                    rules[rng.gen_range(0..rules.len())].clone(),
                ));
            }
        }
    }
    if ops.is_empty() {
        ops.push(Op::AssertFact(Term::apps(
            "edb0",
            vec![constant(0), constant(1)],
        )));
    }
    ops
}

/// One randomized crash/replay case.  Applies a batch stream with a
/// checkpoint at a random point (whole-store or incremental, randomly),
/// crashes (drops the writer cold), optionally damages the WAL tail the way
/// a real torn write would, reopens, and compares the recovered store
/// against fresh evaluation of the expected program.
fn run_recovery_case(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5AFE);
    let dir = temp_dir("case", seed);
    let config = StoreConfig::new(&dir);
    let seed_db = || {
        HiLogDb::new(random_range_restricted_normal(
            NormalProgramConfig::default(),
            seed,
        ))
    };

    let batches = rng.gen_range(3..=8usize);
    let checkpoint_after = rng.gen_range(0..=batches);
    // Half the cases checkpoint incrementally, so the manifest + segments +
    // WAL-tail recovery route runs under the same differential oracle (and
    // the same torn tails) as the whole-store route.
    let incremental = rng.gen_bool(0.5);
    // Torn tail: half the cases append a partial frame (a crash mid-append
    // of a batch that was never acknowledged); recovery must discard it and
    // keep everything acknowledged.
    let tear_tail = rng.gen_bool(0.5);

    // `programs[k]` is the published program after k batches.
    let mut programs = Vec::with_capacity(batches + 1);
    let expected_epoch;
    {
        let (mut writer, _handle, report) =
            PersistentWriter::open(&config, seed_db()).expect("fresh open");
        assert!(!report.recovered);
        programs.push(writer.program().clone());
        for k in 0..batches {
            let ops = random_batch(&mut rng, writer.program());
            writer.apply_batch(&ops).expect("batch applies");
            programs.push(writer.program().clone());
            if k + 1 == checkpoint_after {
                if incremental {
                    writer
                        .checkpoint_incremental()
                        .expect("mid-stream incremental checkpoint");
                } else {
                    writer.checkpoint().expect("mid-stream checkpoint");
                }
            }
        }
        expected_epoch = writer.epoch();
        assert_eq!(expected_epoch, batches as u64);
        // Simulated crash: dropped cold, no flush, no final checkpoint.
    }

    if tear_tail {
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("wal.log"))
            .expect("open wal for tearing");
        // A length prefix promising more payload than follows: exactly what
        // a crash mid-append leaves behind.
        let torn = [0xFFu8, 0x00, 0x00, 0x00, 0xAB, 0xCD];
        file.write_all(&torn[..rng.gen_range(1..=torn.len())])
            .expect("append torn frame");
    }

    let expected = &programs[batches];
    let (recovered_writer, handle, report) =
        PersistentWriter::open(&config, seed_db()).expect("recovery open");
    assert!(report.recovered, "seed {seed}: reopen must recover");
    assert_eq!(
        recovered_writer.epoch(),
        expected_epoch,
        "seed {seed}: recovered epoch"
    );
    assert_eq!(
        program_multiset(recovered_writer.program()),
        program_multiset(expected),
        "seed {seed}: recovered program (checkpoint after {checkpoint_after}, \
         incremental={incremental}, torn={tear_tail})"
    );

    // The differential oracle: every plan route against fresh evaluation.
    let mut fresh = HiLogDb::new(expected.clone());
    let snapshot = handle.current();
    for query_text in ["?- idb0(X).", "?- idb1(X).", "?- idb2(X).", "?- P(X)."] {
        let query = parse_query(query_text).unwrap();
        let recovered = snapshot.query(&query).expect("recovered store answers");
        let reference = fresh.query(&query).expect("fresh session answers");
        assert_results_agree(
            &recovered,
            &reference,
            &format!("(seed {seed}, query {query_text})"),
        );
    }
    drop((recovered_writer, handle, snapshot));

    // Recovery is idempotent: reopening the untouched directory lands on
    // the same epoch and program again.
    let (again, _, report) = PersistentWriter::open(&config, seed_db()).expect("second reopen");
    assert!(report.recovered);
    assert_eq!(again.epoch(), expected_epoch, "seed {seed}: second reopen");
    assert_eq!(
        program_multiset(again.program()),
        program_multiset(expected),
        "seed {seed}: second reopen"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// Randomized crash points, checkpoint positions, and torn tails; the case
/// count scales in CI via `HILOG_RECOVERY_CASES`.
#[test]
fn recovered_stores_answer_like_fresh_sessions() {
    let cases = env_usize("HILOG_RECOVERY_CASES", 8);
    for case in 0..cases {
        run_recovery_case(0xD0_0D + case as u64);
    }
}

/// One fsync-fault drill: the disk's sync intermittently lies (seeded,
/// probabilistic, fsync-only faults) while a random batch stream applies
/// under the default retry policy.  A batch whose fsync never lands rolls
/// back and is refused — unacknowledged — and the writer may drop into
/// read-only degraded mode, which a later successful checkpoint re-arms.
/// After a crash, a *clean* reopen must land exactly on the last
/// acknowledged program and answer queries like fresh evaluation of it.
/// Returns how many faults the plan actually injected.
fn run_fsync_fault_case(seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF5C);
    let dir = temp_dir("fsync-fault", seed);
    let io = FaultIo::over_real();
    let config = StoreConfig::new(&dir).io(Arc::new(io.clone()));
    let seed_db = || {
        HiLogDb::new(random_range_restricted_normal(
            NormalProgramConfig::default(),
            seed,
        ))
    };

    let (last_acked, expected_epoch) = {
        let (mut writer, _handle, report) =
            PersistentWriter::open(&config, seed_db()).expect("fresh open");
        assert!(!report.recovered);
        // Arm the faults only once the store is up: the drill targets the
        // batch/checkpoint stream, not directory creation.
        io.set_plan(FaultPlan {
            probability: 0.3,
            seed,
            fsync_only: true,
            ..FaultPlan::default()
        });
        let mut last_acked = writer.program().clone();
        let mut expected_epoch = writer.epoch();
        for _ in 0..8 {
            let ops = random_batch(&mut rng, writer.program());
            match writer.apply_batch(&ops) {
                Ok(_) => {
                    last_acked = writer.program().clone();
                    expected_epoch = writer.epoch();
                }
                // Roll-backed or refused-degraded: either way the batch is
                // unacknowledged.  A checkpoint attempt (itself allowed to
                // fail) is the operator move that re-arms a degraded
                // writer.
                Err(_) => {
                    if writer.checkpoint().is_ok() {
                        last_acked = writer.program().clone();
                        expected_epoch = writer.epoch();
                    }
                }
            }
        }
        (last_acked, expected_epoch)
        // Crash: writer dropped cold mid-fault-storm.
    };

    let injected = io.injected();
    let clean = StoreConfig::new(&dir);
    let (recovered_writer, handle, _report) =
        PersistentWriter::open(&clean, seed_db()).expect("clean reopen after fsync faults");
    assert_eq!(
        recovered_writer.epoch(),
        expected_epoch,
        "seed {seed}: recovery lands on the last acknowledged epoch"
    );
    assert_eq!(
        program_multiset(recovered_writer.program()),
        program_multiset(&last_acked),
        "seed {seed}: recovery keeps exactly the acknowledged batches"
    );

    let mut fresh = HiLogDb::new(last_acked);
    let snapshot = handle.current();
    for query_text in ["?- idb0(X).", "?- idb1(X).", "?- idb2(X).", "?- P(X)."] {
        let query = parse_query(query_text).unwrap();
        let recovered = snapshot.query(&query).expect("recovered store answers");
        let reference = fresh.query(&query).expect("fresh session answers");
        assert_results_agree(
            &recovered,
            &reference,
            &format!("(fsync-fault seed {seed}, query {query_text})"),
        );
    }

    std::fs::remove_dir_all(&dir).ok();
    injected
}

/// The recovery oracle under an fsync-fault storm; scales in CI via
/// `HILOG_RECOVERY_CASES`.
#[test]
fn recovery_oracle_survives_injected_fsync_faults() {
    let cases = env_usize("HILOG_RECOVERY_CASES", 8);
    let mut injected = 0;
    for case in 0..cases {
        injected += run_fsync_fault_case(0xF5C0 + case as u64);
    }
    assert!(
        injected > 0,
        "a 30% per-sync fault probability must actually fire across {cases} cases"
    );
}

/// Losing the *final acknowledged* record to corruption truncates recovery
/// to the previous epoch — the documented contract for bytes that never
/// reached the disk intact — while every earlier batch survives.
#[test]
fn corrupted_final_record_recovers_the_previous_epoch() {
    let seed = 0xBAD_F00D;
    let dir = temp_dir("torn-final", 0);
    let config = StoreConfig::new(&dir);
    let seed_db = || {
        HiLogDb::new(random_range_restricted_normal(
            NormalProgramConfig::default(),
            seed,
        ))
    };
    let mut rng = StdRng::seed_from_u64(seed);

    let mut programs = Vec::new();
    let wal_before_last;
    {
        let (mut writer, _, _) = PersistentWriter::open(&config, seed_db()).expect("fresh open");
        programs.push(writer.program().clone());
        for _ in 0..3 {
            let ops = random_batch(&mut rng, writer.program());
            writer.apply_batch(&ops).expect("batch applies");
            programs.push(writer.program().clone());
        }
        wal_before_last = {
            let stats = writer.storage_stats();
            // Bytes the first three records occupy; everything past this
            // belongs to the fourth.
            let ops = random_batch(&mut rng, writer.program());
            writer.apply_batch(&ops).expect("final batch applies");
            programs.push(writer.program().clone());
            stats.wal_bytes
        };
    }

    // Cut into the final record at an arbitrary depth: the tail scan must
    // drop exactly that record and keep the three intact ones.
    let wal_path = dir.join("wal.log");
    let full = std::fs::metadata(&wal_path).unwrap().len();
    assert!(full > wal_before_last);
    let cut = wal_before_last + (full - wal_before_last) / 2;
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&wal_path)
        .unwrap();
    file.set_len(cut).unwrap();
    drop(file);

    let (writer, handle, report) = PersistentWriter::open(&config, seed_db()).expect("reopen");
    assert!(report.recovered);
    assert_eq!(report.replayed_records, 3);
    assert_eq!(writer.epoch(), 3, "recovery lands on the last intact epoch");
    assert_eq!(writer.program(), &programs[3]);

    let mut fresh = HiLogDb::new(programs[3].clone());
    let query = parse_query("?- idb0(X).").unwrap();
    let recovered = handle.current().query(&query).unwrap();
    let reference = fresh.query(&query).unwrap();
    assert_results_agree(&recovered, &reference, "(torn final record)");

    std::fs::remove_dir_all(&dir).ok();
}

/// A torn *segment* file (media corruption under an otherwise-committed
/// manifest) must not fail recovery: the manifest that references it
/// becomes unloadable, and the store falls back to the newest recovery
/// point that still loads — here the fresh-open baseline checkpoint.  State
/// acknowledged after that point and compacted out of the WAL by the
/// incremental checkpoint is gone (corruption ate its only copy), but the
/// store comes up consistent at the older epoch rather than refusing to
/// open.
#[test]
fn torn_segment_falls_back_to_an_older_recovery_point() {
    let dir = temp_dir("torn-segment", 0);
    let config = StoreConfig::new(&dir);
    let rules = parse_program(
        "reach(X, Y) :- move(X, Y).\n\
         reach(X, Z) :- move(X, Y), reach(Y, Z).",
    )
    .unwrap();

    {
        let (mut writer, _, report) =
            PersistentWriter::open(&config, HiLogDb::new(rules.clone())).expect("fresh open");
        assert!(!report.recovered);
        writer
            .apply_batch(&[
                Op::AssertFact(parse_term("move(a, b)").unwrap()),
                Op::AssertFact(parse_term("colour(a, red)").unwrap()),
            ])
            .expect("batch applies");
        let outcome = writer
            .checkpoint_incremental()
            .expect("incremental checkpoint");
        assert!(outcome.segments_written > 0);
        // Simulated crash right after the checkpoint (WAL now empty).
    }

    // Tear the first segment file in half — a torn write that fsync never
    // acknowledged, discovered only at recovery time.
    let segment = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|ext| ext == "hseg"))
        .expect("incremental checkpoint left a segment");
    let len = std::fs::metadata(&segment).unwrap().len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&segment)
        .unwrap();
    file.set_len(len / 2).unwrap();
    drop(file);

    let (writer, handle, report) =
        PersistentWriter::open(&config, HiLogDb::new(rules.clone())).expect("reopen succeeds");
    assert!(report.recovered, "baseline checkpoint still loads");
    assert!(!report.from_manifest, "the torn manifest must be skipped");
    assert_eq!(
        writer.epoch(),
        0,
        "recovery lands on the baseline epoch (the WAL was compacted)"
    );
    assert_eq!(writer.program(), &rules);

    // The recovered (older) state answers exactly like fresh evaluation.
    let mut fresh = HiLogDb::new(rules);
    let query = parse_query("?- reach(a, X).").unwrap();
    let recovered = handle.current().query(&query).unwrap();
    let reference = fresh.query(&query).unwrap();
    assert_results_agree(&recovered, &reference, "(torn segment)");

    std::fs::remove_dir_all(&dir).ok();
}

/// A *stale* manifest — older than the newest whole-store checkpoint — must
/// neither win recovery nor seed segment reuse afterwards: the first
/// incremental checkpoint after recovering through the newer whole-store
/// file has no manifest to reuse from and rewrites every relation, because
/// mutations between the stale manifest and the recovery point are in no
/// dirty set.
#[test]
fn stale_manifest_neither_wins_recovery_nor_seeds_reuse() {
    let dir = temp_dir("stale-manifest", 0);
    let config = StoreConfig::new(&dir);
    let rules = parse_program(
        "reach(X, Y) :- move(X, Y).\n\
         reach(X, Z) :- move(X, Y), reach(Y, Z).",
    )
    .unwrap();
    let batch = |fact: &str| vec![Op::AssertFact(parse_term(fact).unwrap())];

    {
        let (mut writer, _, _) =
            PersistentWriter::open(&config, HiLogDb::new(rules.clone())).expect("fresh open");
        writer.apply_batch(&batch("move(a, b)")).unwrap(); // epoch 1
        writer
            .checkpoint_incremental()
            .expect("manifest at epoch 1 (becomes stale)");
        writer.apply_batch(&batch("colour(a, red)")).unwrap(); // epoch 2
        writer
            .checkpoint()
            .expect("whole-store checkpoint, epoch 2");
        writer.apply_batch(&batch("move(b, c)")).unwrap(); // epoch 3, WAL tail
                                                           // Simulated crash: epoch 3 exists only as a WAL record.
    }

    let (mut writer, handle, report) =
        PersistentWriter::open(&config, HiLogDb::new(rules.clone())).expect("reopen");
    assert!(report.recovered);
    assert!(
        !report.from_manifest,
        "the epoch-2 whole-store checkpoint outranks the epoch-1 manifest"
    );
    assert_eq!(report.replayed_records, 1, "the epoch-3 batch replays");
    assert_eq!(writer.epoch(), 3);

    // Recovery came through the whole-store file, so the stale manifest
    // must not be reused: move/2 changed at epoch 3, colour/2 at epoch 2,
    // and the epoch-1 manifest knows about neither.  Everything rewrites.
    let outcome = writer
        .checkpoint_incremental()
        .expect("post-recovery incremental checkpoint");
    assert_eq!(
        outcome.segments_written, 2,
        "both relations rewrite — no reuse from the stale manifest"
    );

    // And the rewritten manifest is a valid recovery point for the full
    // recovered state.
    drop((writer, handle));
    let (writer, handle, report) =
        PersistentWriter::open(&config, HiLogDb::new(rules.clone())).expect("second reopen");
    assert!(report.recovered && report.from_manifest);
    assert_eq!(writer.epoch(), 3);
    let mut fresh = HiLogDb::new(writer.program().clone());
    let query = parse_query("?- reach(a, X).").unwrap();
    let recovered = handle.current().query(&query).unwrap();
    let reference = fresh.query(&query).unwrap();
    assert_results_agree(&recovered, &reference, "(stale manifest)");
    assert_eq!(recovered.answers.len(), 2, "a reaches b and c");

    std::fs::remove_dir_all(&dir).ok();
}

/// HTTP restart round-trip: mutate a durable server, shut it down
/// gracefully (final checkpoint), start a second server on the same
/// directory, and demand identical answers plus truthful storage stats.
#[test]
fn http_server_restart_recovers_answers_and_reports_storage() {
    use hilog_server::{client, Server, ServerConfig};

    let dir = temp_dir("http", 0);
    let program = parse_program(
        "winning(X) :- move(X, Y), not winning(Y).\n\
         move(a, b). move(b, c).",
    )
    .unwrap();

    // First life: assert through HTTP, checkpoint through HTTP, mutate some
    // more (leaving a WAL tail), then shut down gracefully.
    {
        let server = Server::bind(
            ServerConfig::ephemeral().workers(2).data_dir(&dir),
            HiLogDb::new(program.clone()),
        )
        .expect("bind durable server");
        assert!(!server.recovery().recovered, "first boot is fresh");
        let addr = server.local_addr();
        let shutdown = server.handle();
        let serving = std::thread::spawn(move || server.serve());

        let response = client::post(
            addr,
            "/assert",
            r#"{"facts": ["move(c, d)", "move(d, e)"]}"#,
        )
        .unwrap();
        assert_eq!(response.status, 200, "{}", response.body);

        let response = client::post(addr, "/checkpoint", "").unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
        let json = response.json().unwrap();
        assert_eq!(json.get("epoch").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(json.get("durable").and_then(|v| v.as_bool()), Some(true));

        let response = client::post(addr, "/retract", r#"{"facts": ["move(a, b)"]}"#).unwrap();
        assert_eq!(response.status, 200, "{}", response.body);

        let response = client::get(addr, "/stats").unwrap();
        let json = response.json().unwrap();
        assert_eq!(json.get("durable").and_then(|v| v.as_bool()), Some(true));
        assert_eq!(json.get("wal_records").and_then(|v| v.as_u64()), Some(1));
        assert_eq!(
            json.get("last_checkpoint_epoch").and_then(|v| v.as_u64()),
            Some(1)
        );
        assert!(json.get("live_symbols").and_then(|v| v.as_u64()).unwrap() > 0);

        shutdown.shutdown();
        serving.join().expect("server thread exits");
    }

    // Second life: an *empty* seed program — everything must come back from
    // the data directory alone.
    {
        let server = Server::bind(
            ServerConfig::ephemeral().workers(2).data_dir(&dir),
            HiLogDb::new(hilog_core::Program::new()),
        )
        .expect("bind recovered server");
        let report = server.recovery();
        assert!(report.recovered, "second boot recovers");
        assert_eq!(
            report.replayed_records, 0,
            "graceful shutdown checkpointed, so no replay"
        );
        let addr = server.local_addr();
        let shutdown = server.handle();
        let serving = std::thread::spawn(move || server.serve());

        // The full recovered state: c -> d -> e, a no longer moves.
        for (query, truth) in [
            ("?- move(c, d).", true),
            ("?- move(d, e).", true),
            ("?- move(a, b).", false),
            ("?- winning(d).", true),
        ] {
            let mut body = String::from("{\"query\":");
            serde::write_json_string(&mut body, query);
            body.push('}');
            let response = client::post(addr, "/query", &body).unwrap();
            assert_eq!(response.status, 200, "{query}: {}", response.body);
            let json = response.json().unwrap();
            let served = json
                .get("result")
                .and_then(|r| r.get("truth"))
                .and_then(|v| v.as_str())
                .expect("truth member");
            assert_eq!(served == "true", truth, "{query} after restart");
        }

        let response = client::get(addr, "/stats").unwrap();
        let json = response.json().unwrap();
        assert_eq!(json.get("epoch").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(json.get("wal_records").and_then(|v| v.as_u64()), Some(0));
        assert_eq!(
            json.get("last_checkpoint_epoch").and_then(|v| v.as_u64()),
            Some(2),
            "shutdown checkpoint is the newest"
        );

        shutdown.shutdown();
        serving.join().expect("server thread exits");
    }

    std::fs::remove_dir_all(&dir).ok();
}
