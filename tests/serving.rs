//! Concurrency oracle for the serving layer, plus an HTTP round-trip check.
//!
//! The oracle's contract: a query answered through a pinned [`DbSnapshot`]
//! must be *exactly* the answer a fresh single-threaded [`HiLogDb`] session
//! gives for that snapshot's program — no matter how many reader threads
//! are querying concurrently or how fast the writer is publishing batches.
//! Readers therefore observe only whole published batches, at a single
//! well-defined epoch per query.
//!
//! Scaled up in CI via `HILOG_SERVING_READERS` (reader-thread count) and
//! `HILOG_SERVING_QUERIES` (queries per reader).

use hilog_repro::prelude::*;
use hilog_workloads::serving::{serving_workload, ServingWorkloadConfig};
use std::sync::atomic::{AtomicBool, Ordering};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A comparable key for a query's outcome: overall truth plus the sorted
/// answer set.  Stats and plans are intentionally excluded — caching and
/// table reuse may differ between a warm snapshot and a fresh session, but
/// the answers may not.
fn answer_key(result: &QueryResult) -> (String, Vec<String>) {
    let mut answers: Vec<String> = result
        .answers
        .iter()
        .map(|a| format!("{:?} {:?}", a.bindings, a.truth))
        .collect();
    answers.sort();
    (format!("{:?}", result.truth), answers)
}

/// N scoped reader threads query pinned snapshots while the writer streams
/// randomized batches; every response must exactly equal a fresh
/// single-threaded session at that snapshot's epoch.
#[test]
fn concurrent_readers_agree_with_fresh_sessions_at_every_epoch() {
    let readers = env_usize("HILOG_SERVING_READERS", 4);
    let queries_per_reader = env_usize("HILOG_SERVING_QUERIES", 60);
    let workload = serving_workload(
        &ServingWorkloadConfig {
            queries: queries_per_reader * readers,
            ..ServingWorkloadConfig::default()
        },
        0xC0FFEE,
    );

    let (mut writer, handle) = HiLogDb::new(workload.program.clone()).into_serving();
    let writer_done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for reader in 0..readers {
            let handle = handle.clone();
            let queries = &workload.queries;
            let writer_done = &writer_done;
            scope.spawn(move || {
                let mut checked = 0;
                let mut pass = 0;
                // Keep cycling until the writer finishes, so reads genuinely
                // overlap the publish stream even on slow machines.
                while checked < queries_per_reader || !writer_done.load(Ordering::SeqCst) {
                    let q = &queries[(reader * queries_per_reader + pass) % queries.len()];
                    pass += 1;
                    let query = parse_query(q).expect("workload query parses");
                    let snapshot = handle.current();
                    let served = snapshot.query(&query).expect("snapshot query succeeds");
                    // The oracle: a fresh, single-threaded session over this
                    // snapshot's exact program.
                    let mut oracle = HiLogDb::new(snapshot.program().clone());
                    let expected = oracle.query(&query).expect("oracle query succeeds");
                    assert_eq!(
                        answer_key(&served),
                        answer_key(&expected),
                        "reader {reader} diverged from the oracle at epoch {} on {q}",
                        snapshot.epoch(),
                    );
                    checked += 1;
                    if checked >= queries_per_reader * 4 {
                        break; // don't spin forever if the writer stalls
                    }
                }
                assert!(checked >= queries_per_reader);
            });
        }

        let mut last_epoch = handle.current().epoch();
        for batch in &workload.batches {
            for fact in &batch.facts {
                let term = parse_term(fact).expect("workload fact parses");
                if batch.assert {
                    writer.assert_fact(term).expect("workload facts are ground");
                } else {
                    assert!(writer.retract_fact(&term), "retract of live fact {fact}");
                }
            }
            let snapshot = writer.publish();
            assert_eq!(snapshot.epoch(), last_epoch + 1, "epochs are monotone");
            last_epoch = snapshot.epoch();
        }
        writer_done.store(true, Ordering::SeqCst);
    });
}

/// The same racing-readers contract with parallel evaluation enabled: the
/// writer session evaluates with four worker threads, so every *cold*
/// published snapshot warms its model through the SCC-wave fixpoint while
/// readers race the publish stream.  The oracle is deliberately a fresh
/// **single-threaded** session at the answering epoch — pinning the serving
/// layer and the parallel evaluator against the serial semantics at once.
#[test]
fn parallel_snapshots_agree_with_serial_sessions_under_racing_readers() {
    let readers = env_usize("HILOG_SERVING_READERS", 4);
    let queries_per_reader = env_usize("HILOG_SERVING_QUERIES", 40);
    let workload = serving_workload(
        &ServingWorkloadConfig {
            queries: queries_per_reader * readers,
            ..ServingWorkloadConfig::default()
        },
        0xBEEF,
    );

    let db = HiLogDb::builder()
        .program(workload.program.clone())
        .options(EvalOptions::with_eval_threads(4))
        .build();
    let (mut writer, handle) = db.into_serving();
    let writer_done = AtomicBool::new(false);
    let (_, _, tasks_before) = parallel_counters();

    std::thread::scope(|scope| {
        for reader in 0..readers {
            let handle = handle.clone();
            let queries = &workload.queries;
            let writer_done = &writer_done;
            scope.spawn(move || {
                let mut checked = 0;
                let mut pass = 0;
                while checked < queries_per_reader || !writer_done.load(Ordering::SeqCst) {
                    let q = &queries[(reader * queries_per_reader + pass) % queries.len()];
                    pass += 1;
                    let query = parse_query(q).expect("workload query parses");
                    let snapshot = handle.current();
                    let served = snapshot.query(&query).expect("snapshot query succeeds");
                    let mut oracle = HiLogDb::builder()
                        .program(snapshot.program().clone())
                        .options(EvalOptions::with_eval_threads(1))
                        .build();
                    let expected = oracle.query(&query).expect("oracle query succeeds");
                    assert_eq!(
                        answer_key(&served),
                        answer_key(&expected),
                        "reader {reader} diverged from the serial oracle at epoch {} on {q}",
                        snapshot.epoch(),
                    );
                    // Every few queries, warm the snapshot's full model —
                    // queries route through the tabled evaluator, so this is
                    // what actually drives the cold snapshot through the
                    // wave-parallel fixpoint — and hold it to the serial
                    // oracle's model.
                    if checked % 4 == 0 {
                        let served_model = snapshot.model().expect("snapshot model evaluates");
                        let expected_model = oracle.model().expect("oracle model evaluates");
                        assert_eq!(
                            &*served_model,
                            expected_model,
                            "reader {reader}: parallel-warmed model diverged at epoch {}",
                            snapshot.epoch(),
                        );
                    }
                    checked += 1;
                    if checked >= queries_per_reader * 4 {
                        break; // don't spin forever if the writer stalls
                    }
                }
                assert!(checked >= queries_per_reader);
            });
        }

        for batch in &workload.batches {
            for fact in &batch.facts {
                let term = parse_term(fact).expect("workload fact parses");
                if batch.assert {
                    writer.assert_fact(term).expect("workload facts are ground");
                } else {
                    assert!(writer.retract_fact(&term), "retract of live fact {fact}");
                }
            }
            writer.publish();
        }
        writer_done.store(true, Ordering::SeqCst);
    });

    let (_, _, tasks_after) = parallel_counters();
    assert!(
        tasks_after > tasks_before,
        "parallel serving never dispatched a pooled task"
    );
}

/// A reader that pinned a snapshot keeps answering at that epoch while the
/// writer publishes past it.
#[test]
fn pinned_snapshot_is_immune_to_later_publishes() {
    let workload = serving_workload(&ServingWorkloadConfig::default(), 42);
    let (mut writer, handle) = HiLogDb::new(workload.program.clone()).into_serving();

    let pinned = handle.current();
    let pinned_program = pinned.program().clone();
    let query = parse_query("?- winning(X).").unwrap();
    let before = pinned.query(&query).unwrap();

    for batch in workload.batches.iter().take(6) {
        for fact in &batch.facts {
            let term = parse_term(fact).unwrap();
            if batch.assert {
                writer.assert_fact(term).unwrap();
            } else {
                writer.retract_fact(&term);
            }
        }
        writer.publish();
    }

    assert_eq!(pinned.epoch(), 0, "the pinned snapshot does not move");
    assert!(handle.current().epoch() > 0, "the handle sees new epochs");
    let after = pinned.query(&query).unwrap();
    assert_eq!(answer_key(&before), answer_key(&after));
    let mut oracle = HiLogDb::new(pinned_program);
    let expected = oracle.query(&query).unwrap();
    assert_eq!(answer_key(&after), answer_key(&expected));
}

/// HTTP round-trip: the server's `/query` answers must match the in-process
/// snapshot answers, and `/assert`/`/retract`/`/stats` must behave.
#[test]
fn http_round_trip_matches_in_process_answers() {
    use hilog_server::{client, Server, ServerConfig};

    let workload = serving_workload(
        &ServingWorkloadConfig {
            nodes: 30,
            queries: 12,
            ..ServingWorkloadConfig::default()
        },
        7,
    );
    let db = HiLogDb::new(workload.program.clone());
    let server = Server::bind(ServerConfig::ephemeral().workers(3), db).expect("bind");
    let addr = server.local_addr();
    let shutdown = server.handle();
    let snapshots = server.snapshots();
    let serving = std::thread::spawn(move || server.serve());

    // Queries on the quiescent server must match the in-process snapshot.
    for q in &workload.queries {
        let body = serde_json::to_string(&QueryBody { query: q }).unwrap();
        let response = client::post(addr, "/query", &body).expect("query round-trip");
        assert_eq!(response.status, 200, "{q}: {}", response.body);
        let json = response.json().expect("response parses");
        let served = json.get("result").expect("result member");
        let snapshot = snapshots.current();
        let expected = snapshot.query(&parse_query(q).unwrap()).unwrap();
        let expected_json: serde_json::Value =
            serde_json::from_str(&serde_json::to_string(&expected).unwrap()).unwrap();
        // Stats and plans legitimately differ between the two runs (table
        // caching on the shared snapshot); answers and truth may not.
        for member in ["answers", "truth"] {
            assert_eq!(
                served.get(member),
                expected_json.get(member),
                "HTTP and in-process `{member}` diverge on {q}"
            );
        }
    }

    // Mutations publish new epochs and report missing retractions.
    let response = client::post(addr, "/assert", r#"{"facts": ["move(p0, p29)"]}"#).unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let json = response.json().unwrap();
    assert_eq!(json.get("epoch").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(json.get("applied").and_then(|v| v.as_u64()), Some(1));

    let response = client::post(
        addr,
        "/retract",
        r#"{"facts": ["move(p0, p29)", "move(p0, p0)"]}"#,
    )
    .unwrap();
    let json = response.json().unwrap();
    assert_eq!(json.get("epoch").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(json.get("applied").and_then(|v| v.as_u64()), Some(1));
    let missing = json.get("missing").and_then(|v| v.as_array()).unwrap();
    assert_eq!(missing.len(), 1);

    let response = client::get(addr, "/stats").unwrap();
    assert_eq!(response.status, 200);
    let json = response.json().unwrap();
    assert_eq!(json.get("epoch").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(
        json.get("semantics").and_then(|v| v.as_str()),
        Some("well-founded")
    );

    // Bad requests are rejected with client errors, not hangs or panics.
    let response = client::post(addr, "/query", "not json").unwrap();
    assert_eq!(response.status, 400);
    let response = client::post(addr, "/query", r#"{"query": "winning(X"}"#).unwrap();
    assert_eq!(response.status, 422);
    let response = client::post(addr, "/assert", r#"{"facts": ["move(X, p1)"]}"#).unwrap();
    assert_eq!(response.status, 422, "non-ground fact is rejected");
    let response = client::get(addr, "/missing").unwrap();
    assert_eq!(response.status, 404);

    shutdown.shutdown();
    serving.join().expect("server thread exits cleanly");
}

/// Serialisation helper for the round-trip test's query bodies.
struct QueryBody<'a> {
    query: &'a str,
}

impl serde::Serialize for QueryBody<'_> {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        serde::write_field(out, "query", &self.query, true);
        out.push('}');
    }
}
