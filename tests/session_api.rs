//! The `HiLogDb` session facade, exercised end-to-end through the umbrella
//! crate: plan routing, cache reuse across queries, and the property that
//! incremental `assert_fact` agrees with rebuilding a fresh session from the
//! extended program — for both magic-sets and full-model plans.

use hilog_repro::prelude::*;
use hilog_workloads::random_programs::{random_range_restricted_normal, NormalProgramConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Property-test case count, overridable from CI via `HILOG_PROPTEST_CASES`.
fn proptest_cases(default: u32) -> u32 {
    std::env::var("HILOG_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn game_db() -> HiLogDb {
    HiLogDb::new(
        parse_program(
            "winning(X) :- move(X, Y), not winning(Y).\n\
             move(a, b). move(b, c). move(c, d).",
        )
        .unwrap(),
    )
}

/// Canonical rendering of a result's answers (bindings plus truth), for
/// set-level comparison between sessions.
fn answer_set(result: &QueryResult) -> BTreeSet<String> {
    result.answers.iter().map(|a| a.to_string()).collect()
}

#[test]
fn bound_queries_get_magic_plans_and_unbound_ones_full_model_plans() {
    let db = game_db();
    let bound = db.explain(&parse_query("?- winning(a).").unwrap());
    assert_eq!(bound.strategy, PlanStrategy::MagicSets);
    assert_eq!(bound.adornment, "b");
    let open_args = db.explain(&parse_query("?- winning(X).").unwrap());
    assert_eq!(open_args.strategy, PlanStrategy::MagicSets);
    assert_eq!(open_args.adornment, "f");
    let unbound = db.explain(&parse_query("?- P(a, X).").unwrap());
    assert_eq!(unbound.strategy, PlanStrategy::FullModel);
}

#[test]
fn second_bound_query_reuses_tables_second_unbound_query_reuses_model() {
    let mut db = game_db();
    let bound = parse_query("?- winning(X).").unwrap();
    let first = db.query(&bound).unwrap();
    assert!(first.stats.rule_applications > 0);
    let second = db.query(&bound).unwrap();
    assert_eq!(
        second.stats.rule_applications, 0,
        "subgoal tables not reused"
    );
    assert!(second.stats.cached_subqueries > 0);
    assert_eq!(answer_set(&second), answer_set(&first));

    let unbound = parse_query("?- P(a, X).").unwrap();
    let first = db.query(&unbound).unwrap();
    assert_eq!(
        first.stats.groundings, 1,
        "first full-model query grounds once"
    );
    let second = db.query(&unbound).unwrap();
    assert_eq!(second.stats.groundings, 0, "cached model was re-grounded");
    assert_eq!(answer_set(&second), answer_set(&first));
}

#[test]
fn results_serialise_for_the_experiments_runner() {
    let mut db = game_db();
    let result = db.query(&parse_query("?- winning(X).").unwrap()).unwrap();
    let json = serde_json::to_string(&result).unwrap();
    assert!(json.contains("\"plan\""));
    assert!(json.contains("\"strategy\":\"magic-sets\""));
    assert!(json.contains("\"stats\""));
}

#[test]
fn session_agrees_with_the_figure_1_and_stable_routes() {
    let program = parse_program(
        "winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).\n\
         game(m). m(a, b). m(b, c).",
    )
    .unwrap();
    let mut wfs_db = HiLogDb::new(program.clone());
    let wfm = wfs_db.model().unwrap().clone();
    let mut modular_db = HiLogDb::builder()
        .program(program.clone())
        .semantics(Semantics::ModularCheck)
        .build();
    let mut stable_db = HiLogDb::builder()
        .program(program)
        .semantics(Semantics::Stable)
        .build();
    for atom in wfm.base() {
        assert_eq!(modular_db.holds(atom).unwrap(), wfm.truth(atom), "{atom}");
        assert_eq!(stable_db.holds(atom).unwrap(), wfm.truth(atom), "{atom}");
    }
}

/// One incremental-vs-fresh comparison: `db` has already answered queries,
/// then receives `fact`; a fresh session is built from the extended program.
/// Both must answer `query` identically.
fn check_incremental_agreement(
    program: &hilog_core::Program,
    fact: &hilog_core::Term,
    query: &hilog_core::rule::Query,
) {
    let mut incremental = HiLogDb::new(program.clone());
    // Warm every cache the plan might use before mutating.
    let _ = incremental.query(query);
    incremental.assert_fact(fact.clone()).unwrap();
    let incremental_result = incremental.query(query).unwrap();

    let mut extended = program.clone();
    extended.push(hilog_core::rule::Rule::fact(fact.clone()));
    let mut fresh = HiLogDb::new(extended);
    let fresh_result = fresh.query(query).unwrap();

    assert_results_agree(
        &incremental_result,
        &fresh_result,
        &format!("on {query} after asserting {fact}\n{program}"),
    );
}

// ---------------------------------------------------------------------
// Incremental ≡ from-scratch under randomized mutation *sequences*
// ---------------------------------------------------------------------

/// Queries both the long-lived session and a fresh session built from the
/// session's current program, and demands strictly equivalent results on
/// *every* plan route: the same answers with the same three-valued truth,
/// the same overall truth, and the same verdict (a warm session falls back
/// to the full model on a non-modularly-stratified instance if and only if
/// a cold one does — the evaluator's negative-cycle detection is
/// path-independent, so which subgoal tables happen to be complete cannot
/// change what the query reports).
fn check_against_fresh(db: &mut HiLogDb, query: &hilog_core::rule::Query, context: &str) {
    let incremental = db.query(query).expect("incremental session answers");
    let mut fresh = HiLogDb::new(db.program().clone());
    let reference = fresh.query(query).expect("fresh session answers");
    assert_results_agree(
        &incremental,
        &reference,
        &format!("on {query} ({context})\n{}", db.program()),
    );
}

/// The shared comparison policy of `check_against_fresh` and
/// `check_incremental_agreement`: full three-valued, answer-for-answer
/// equality, identical overall truth, and an identical
/// fell-back-to-the-full-model verdict.
fn assert_results_agree(incremental: &QueryResult, reference: &QueryResult, context: &str) {
    assert_eq!(
        answer_set(incremental),
        answer_set(reference),
        "incremental and fresh sessions disagree {context}"
    );
    assert_eq!(incremental.truth, reference.truth, "{context}");
    assert_eq!(
        incremental.fallback.is_some(),
        reference.fallback.is_some(),
        "warm and cold sessions took different routes {context}"
    );
}

/// Drives one randomized sequence of `assert_fact` / `retract_fact` /
/// `assert_rule` / `retract_rule`, interleaving a bound and an unbound query
/// after every mutation and comparing each intermediate result against a
/// fresh session built from the equivalent program.
fn run_mutation_sequence(seed: u64, steps: usize) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF);
    let mut db = HiLogDb::new(random_range_restricted_normal(
        NormalProgramConfig::default(),
        seed,
    ));
    let constant = |i: usize| Term::sym(format!("c{i}"));
    // Warm every cache family before mutating.
    let _ = db.query(&parse_query("?- idb0(X).").unwrap());
    let _ = db.query(&parse_query("?- P(X).").unwrap());
    for step in 0..steps {
        let context = format!("seed {seed}, step {step}");
        match rng.gen_range(0..10u32) {
            // Assert an EDB fact (the common serving mutation).
            0..=3 => {
                let fact = Term::apps(
                    format!("edb{}", rng.gen_range(0..2)),
                    vec![constant(rng.gen_range(0..5)), constant(rng.gen_range(0..5))],
                );
                db.assert_fact(fact).unwrap();
            }
            // Assert an IDB fact: the predicate becomes both derived and
            // extensional, stressing the non-pure-EDB delta path.
            4 => {
                let fact = Term::apps(
                    format!("idb{}", rng.gen_range(0..3)),
                    vec![constant(rng.gen_range(0..5))],
                );
                db.assert_fact(fact).unwrap();
            }
            // Retract a random present fact (DRed path), or a missing one.
            5..=6 => {
                let facts: Vec<Term> = db.program().facts().map(|r| r.head.clone()).collect();
                if facts.is_empty() {
                    continue;
                }
                let target = facts[rng.gen_range(0..facts.len())].clone();
                assert!(db.retract_fact(&target), "{context}: fact was present");
            }
            // Assert a fresh rule (full invalidation path).
            7 => {
                let head = Term::apps(format!("idb{}", rng.gen_range(0..3)), vec![Term::var("X")]);
                let mut body = vec![Literal::pos(Term::apps(
                    format!("edb{}", rng.gen_range(0..2)),
                    vec![Term::var("X"), Term::var("Y")],
                ))];
                if rng.gen_bool(0.5) {
                    body.push(Literal::neg(Term::apps(
                        format!("idb{}", rng.gen_range(0..3)),
                        vec![Term::var("Y")],
                    )));
                }
                db.assert_rule(Rule::new(head, body));
            }
            // Retract a random proper rule (targeted rule invalidation).
            _ => {
                let rules: Vec<Rule> = db.program().proper_rules().cloned().collect();
                if rules.is_empty() {
                    continue;
                }
                let target = rules[rng.gen_range(0..rules.len())].clone();
                assert!(db.retract_rule(&target), "{context}: rule was present");
            }
        }
        let bound = parse_query(&format!("?- idb{}(X).", rng.gen_range(0..3))).unwrap();
        check_against_fresh(&mut db, &bound, &format!("{context}, bound"));
        let unbound = parse_query("?- P(X).").unwrap();
        check_against_fresh(&mut db, &unbound, &format!("{context}, unbound"));
    }
}

/// The committed regression corpus doubles as the sequence-suite corpus: the
/// pinned seeds always run, whatever the proptest configuration.
#[test]
fn pinned_mutation_sequences_match_fresh_sessions() {
    for line in include_str!("corpus/differential_seeds.txt").lines() {
        let Ok(seed) = line.trim().parse::<u64>() else {
            continue;
        };
        run_mutation_sequence(seed, 4);
    }
}

/// The pinned Example 6.4 regression corpus: programs whose instances carry
/// a dependency cycle through negation (or whose branch ordering makes the
/// cycle evaluate away), probed from a cold session and from warm sessions
/// prepared with several different query schedules.  Every schedule must
/// produce the same verdict — the same fallback-to-the-full-model decision,
/// with a `not modularly stratified` report when it happens — and the same
/// three-valued answers.
#[test]
fn example_6_4_family_verdicts_are_path_independent() {
    // (program, warm-up queries, probe queries)
    type Entry = (
        &'static str,
        &'static [&'static str],
        &'static [&'static str],
    );
    let corpus: &[Entry] = &[
        // Example 6.4 with `not p(Z)` selected first: the self-dependency of
        // p(a) is reached and the query falls back.
        (
            "p(X) :- t(X, Y, Z, P), not p(Z), not p(Y).\n\
             t(a, b, a, p). t(c, a, b, p).\n\
             p(b) :- t(X, Y, b, P).",
            &["?- p(b).", "?- t(X, Y, Z, P)."],
            &["?- p(a).", "?- p(X).", "?- p(c)."],
        ),
        // The paper's original literal order: the offending branch is killed
        // by `not p(b)` before `not p(a)` is selected, so every session —
        // warm or cold — completes without a fallback.
        (
            "p(X) :- t(X, Y, Z, P), not p(Y), not p(Z).\n\
             t(a, b, a, p). t(c, a, b, p).\n\
             p(b) :- t(X, Y, b, P).",
            &["?- p(b).", "?- p(c)."],
            &["?- p(a).", "?- p(X)."],
        ),
        // Win/move with a two-cycle a <-> b: winning(a) / winning(b) are
        // undefined, and reaching them must report the cycle identically
        // however much of the acyclic part is already tabled.
        (
            "winning(X) :- move(X, Y), not winning(Y).\n\
             move(a, b). move(b, a). move(b, c). move(d, e).",
            &["?- winning(d).", "?- winning(e).", "?- move(X, Y)."],
            &["?- winning(a).", "?- winning(X)."],
        ),
        // Two HiLog games sharing one variable-headed rule, one game cyclic:
        // warming the acyclic game must not change the cyclic game's
        // verdict (nor may the cyclic game's tables poison the acyclic one).
        (
            "winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).\n\
             game(g). game(h).\n\
             g(a, b). g(b, c).\n\
             h(x, y). h(y, x).",
            &["?- winning(g)(a).", "?- winning(g)(X).", "?- game(M)."],
            &[
                "?- winning(h)(x).",
                "?- winning(g)(b).",
                "?- game(M), winning(M)(X).",
            ],
        ),
    ];
    for (i, (text, warmups, probes)) in corpus.iter().enumerate() {
        let program = parse_program(text).unwrap();
        for probe in *probes {
            let probe_query = parse_query(probe).unwrap();
            let mut cold = HiLogDb::new(program.clone());
            let reference = cold.query(&probe_query).expect("cold session answers");
            let schedules: Vec<Vec<&str>> = vec![
                vec![],
                warmups.to_vec(),
                warmups.iter().rev().copied().collect(),
                warmups.iter().chain(probes.iter()).copied().collect(),
            ];
            for schedule in schedules {
                let mut warm = HiLogDb::new(program.clone());
                for w in &schedule {
                    let _ = warm.query(&parse_query(w).unwrap());
                }
                let result = warm.query(&probe_query).expect("warm session answers");
                assert_results_agree(
                    &result,
                    &reference,
                    &format!("corpus {i}, probe {probe}, warmed by {schedule:?}"),
                );
                if let Some(note) = &result.fallback {
                    assert!(
                        note.contains("not modularly stratified"),
                        "unexpected fallback reason: {note}"
                    );
                }
            }
        }
    }
}

/// Instance-level table maintenance: a mutation to one game of a shared
/// (variable-headed) HiLog rule keeps the other game's tables, patches the
/// mutated game's fact tables in place, and drops only the mutated game's
/// derived tables — observable through the new `EvalStats` counters.
#[test]
fn mutations_patch_and_keep_tables_at_the_instance_level() {
    let mut db = HiLogDb::new(
        parse_program(
            "winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).\n\
             game(g). game(h).\n\
             g(a, b). g(b, c).\n\
             h(x, y). h(y, z).",
        )
        .unwrap(),
    );
    let g_query = parse_query("?- winning(g)(X).").unwrap();
    let h_query = parse_query("?- winning(h)(X).").unwrap();
    db.query(&g_query).unwrap();
    let h_first = db.query(&h_query).unwrap();
    assert!(h_first.stats.rule_applications > 0);
    // A new g edge: the g fact tables are patched, the winning(g) tables are
    // dropped, and everything h survives untouched.
    db.assert_fact(parse_term("g(c, d)").unwrap()).unwrap();
    let plan = db.explain(&h_query);
    assert!(plan.patched_subqueries > 0, "g fact tables must be patched");
    assert!(plan.dropped_subqueries > 0, "winning(g) tables must drop");
    let h_second = db.query(&h_query).unwrap();
    assert_eq!(
        h_second.stats.rule_applications, 0,
        "the untouched game's tables were dropped"
    );
    assert!(h_second.stats.cached_subqueries > 0);
    assert!(h_second.stats.tables_reused > 0);
    assert_eq!(h_second.stats.tables_patched, plan.patched_subqueries);
    assert_eq!(h_second.stats.tables_dropped, plan.dropped_subqueries);
    // The patched g tables answer correctly: chain a -> b -> c -> d.
    let g_after = db.query(&g_query).unwrap();
    let xs: BTreeSet<String> = g_after
        .answers
        .iter()
        .map(|a| a.binding("X").unwrap().to_string())
        .collect();
    assert_eq!(xs, ["a".to_string(), "c".to_string()].into_iter().collect());
    check_against_fresh(&mut db, &g_query, "instance-level maintenance");
}

/// The acceptance scenario: a pure-EDB assert (nothing derives or reads the
/// predicate beyond its own table) drops zero tables — the fact's own table
/// is patched in place and every other table is reused.
#[test]
fn pure_edb_asserts_drop_zero_tables_and_patch_in_place() {
    let mut db = HiLogDb::new(
        parse_program(
            "winning(X) :- move(X, Y), not winning(Y).\n\
             move(a, b). move(b, c). colour(a, red).",
        )
        .unwrap(),
    );
    let win = parse_query("?- winning(X).").unwrap();
    let colours = parse_query("?- colour(X, C).").unwrap();
    db.query(&win).unwrap();
    db.query(&colours).unwrap();
    let warm = db.explain(&win).cached_subqueries;
    db.assert_fact(parse_term("colour(b, blue)").unwrap())
        .unwrap();
    let result = db.query(&colours).unwrap();
    assert_eq!(result.stats.tables_dropped, 0, "unrelated tables dropped");
    assert_eq!(result.stats.tables_patched, 1, "colour table not patched");
    assert_eq!(result.stats.tables_reused, warm);
    assert_eq!(
        result.stats.rule_applications, 0,
        "the patched colour table should answer without re-evaluation"
    );
    let cs: BTreeSet<String> = result
        .answers
        .iter()
        .map(|a| a.binding("C").unwrap().to_string())
        .collect();
    assert_eq!(
        cs,
        ["red".to_string(), "blue".to_string()]
            .into_iter()
            .collect()
    );
}

/// Monotone table maintenance: a fact asserted into a negation-free reach
/// of the recorded dependency graph *refills* the affected derived tables
/// eagerly (their delta can only add answers) instead of dropping them —
/// the follow-up query is a pure cache hit that already sees the new
/// answers, and nothing is reported dropped.
#[test]
fn monotone_asserts_refill_derived_tables_eagerly() {
    let mut db = HiLogDb::new(
        parse_program(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- edge(X, Y), path(Y, Z).\n\
             edge(a, b). edge(b, c).",
        )
        .unwrap(),
    );
    let query = parse_query("?- path(a, X).").unwrap();
    db.query(&query).unwrap();
    db.assert_fact(parse_term("edge(c, d)").unwrap()).unwrap();
    let second = db.query(&query).unwrap();
    assert!(
        second.stats.tables_refilled > 0,
        "derived path tables must refill eagerly on a monotone assert"
    );
    assert_eq!(
        second.stats.tables_dropped, 0,
        "a monotone assert must not drop tables"
    );
    assert_eq!(
        second.stats.rule_applications, 0,
        "the refilled table should answer straight from cache"
    );
    let xs: BTreeSet<String> = second
        .answers
        .iter()
        .map(|a| a.binding("X").unwrap().to_string())
        .collect();
    assert_eq!(
        xs,
        ["b", "c", "d"].iter().map(|s| s.to_string()).collect(),
        "the refilled table must already contain the extended chain"
    );
    check_against_fresh(&mut db, &query, "monotone eager refill");
}

#[test]
fn retract_rule_is_exposed_end_to_end() {
    let mut db = HiLogDb::new(
        parse_program(
            "winning(X) :- move(X, Y), not winning(Y).\n\
             winning(X) :- bonus(X).\n\
             move(a, b). move(b, c). bonus(c).",
        )
        .unwrap(),
    );
    let query = parse_query("?- winning(X).").unwrap();
    let with_bonus = db.query(&query).unwrap();
    assert!(answer_set(&with_bonus).iter().any(|a| a.contains("X = c")));
    let bonus_rule = parse_program("winning(X) :- bonus(X).").unwrap().rules[0].clone();
    assert!(db.retract_rule(&bonus_rule));
    assert!(!db.retract_rule(&bonus_rule), "retracting twice must fail");
    let without_bonus = db.query(&query).unwrap();
    assert!(!answer_set(&without_bonus)
        .iter()
        .any(|a| a.contains("X = c")));
    // And the session still agrees with a fresh one.
    check_against_fresh(&mut db, &query, "retract_rule end-to-end");
}

#[test]
fn update_heavy_sessions_report_patched_models() {
    // The serving pattern the incremental bench measures: alternating
    // asserts and full-model point queries must patch, not re-ground.
    let mut db = HiLogDb::new(
        parse_program("winning(X) :- move(X, Y), not winning(Y). move(p0, p1).").unwrap(),
    );
    let query = parse_query("?- P(p0).").unwrap();
    assert_eq!(db.query(&query).unwrap().stats.groundings, 1);
    for i in 1..6 {
        db.assert_fact(parse_term(&format!("move(p{i}, p{})", i + 1)).unwrap())
            .unwrap();
        let result = db.query(&query).unwrap();
        assert_eq!(result.stats.groundings, 0, "assert {i} re-grounded");
        assert_eq!(result.stats.patches, 1);
        assert_eq!(result.stats.model_source, ModelSource::Patched);
    }
    check_against_fresh(&mut db, &parse_query("?- P(X).").unwrap(), "update-heavy");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(proptest_cases(12)))]

    /// Randomized sequences of `assert_fact` / `retract_fact` /
    /// `assert_rule` / `retract_rule` interleaved with queries: every
    /// intermediate result must match a fresh session built from the
    /// equivalent program.
    #[test]
    fn randomized_mutation_sequences_match_fresh_sessions(seed in 0u64..1_000_000) {
        run_mutation_sequence(seed, 6);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(proptest_cases(16)))]

    /// For random range-restricted normal programs, `assert_fact` followed by
    /// a query agrees with building a fresh `HiLogDb` from the extended
    /// program — under both plan families: a bound query (magic-sets route,
    /// with WFS fallback on non-modularly-stratified instances) and an
    /// unbound query (full-model route).
    #[test]
    fn assert_fact_agrees_with_fresh_session(
        seed in 0u64..5_000,
        edb in 0usize..2,
        idb in 0usize..3,
        a in 0usize..5,
        b in 0usize..5,
    ) {
        let program = random_range_restricted_normal(NormalProgramConfig::default(), seed);
        let fact = hilog_core::Term::apps(
            format!("edb{edb}"),
            vec![
                hilog_core::Term::sym(format!("c{a}")),
                hilog_core::Term::sym(format!("c{b}")),
            ],
        );
        // Magic-sets plan: bound query on a derived predicate.
        let bound = parse_query(&format!("?- idb{idb}(X).")).unwrap();
        check_incremental_agreement(&program, &fact, &bound);
        // Full-model plan: unbound query over every unary atom.
        let unbound = parse_query("?- P(X).").unwrap();
        check_incremental_agreement(&program, &fact, &unbound);
    }

    /// Retraction undoes assertion: after assert + retract the session
    /// answers exactly like an untouched session.
    #[test]
    fn retract_restores_previous_answers(seed in 0u64..5_000, idb in 0usize..3) {
        let program = random_range_restricted_normal(NormalProgramConfig::default(), seed);
        let query = parse_query(&format!("?- idb{idb}(X).")).unwrap();
        let mut pristine = HiLogDb::new(program.clone());
        let before = pristine.query(&query).unwrap();

        let fact = hilog_core::Term::apps(
            "edb0",
            vec![hilog_core::Term::sym("c0"), hilog_core::Term::sym("c1")],
        );
        let mut mutated = HiLogDb::new(program);
        let _ = mutated.query(&query);
        mutated.assert_fact(fact.clone()).unwrap();
        let _ = mutated.query(&query);
        prop_assert!(mutated.retract_fact(&fact));
        let after = mutated.query(&query).unwrap();
        prop_assert_eq!(answer_set(&after), answer_set(&before));
    }
}
