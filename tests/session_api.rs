//! The `HiLogDb` session facade, exercised end-to-end through the umbrella
//! crate: plan routing, cache reuse across queries, and the property that
//! incremental `assert_fact` agrees with rebuilding a fresh session from the
//! extended program — for both magic-sets and full-model plans.

use hilog_repro::prelude::*;
use hilog_workloads::random_programs::{random_range_restricted_normal, NormalProgramConfig};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn game_db() -> HiLogDb {
    HiLogDb::new(
        parse_program(
            "winning(X) :- move(X, Y), not winning(Y).\n\
             move(a, b). move(b, c). move(c, d).",
        )
        .unwrap(),
    )
}

/// Canonical rendering of a result's answers (bindings plus truth), for
/// set-level comparison between sessions.
fn answer_set(result: &QueryResult) -> BTreeSet<String> {
    result.answers.iter().map(|a| a.to_string()).collect()
}

#[test]
fn bound_queries_get_magic_plans_and_unbound_ones_full_model_plans() {
    let db = game_db();
    let bound = db.explain(&parse_query("?- winning(a).").unwrap());
    assert_eq!(bound.strategy, PlanStrategy::MagicSets);
    assert_eq!(bound.adornment, "b");
    let open_args = db.explain(&parse_query("?- winning(X).").unwrap());
    assert_eq!(open_args.strategy, PlanStrategy::MagicSets);
    assert_eq!(open_args.adornment, "f");
    let unbound = db.explain(&parse_query("?- P(a, X).").unwrap());
    assert_eq!(unbound.strategy, PlanStrategy::FullModel);
}

#[test]
fn second_bound_query_reuses_tables_second_unbound_query_reuses_model() {
    let mut db = game_db();
    let bound = parse_query("?- winning(X).").unwrap();
    let first = db.query(&bound).unwrap();
    assert!(first.stats.rule_applications > 0);
    let second = db.query(&bound).unwrap();
    assert_eq!(
        second.stats.rule_applications, 0,
        "subgoal tables not reused"
    );
    assert!(second.stats.cached_subqueries > 0);
    assert_eq!(answer_set(&second), answer_set(&first));

    let unbound = parse_query("?- P(a, X).").unwrap();
    let first = db.query(&unbound).unwrap();
    assert_eq!(
        first.stats.groundings, 1,
        "first full-model query grounds once"
    );
    let second = db.query(&unbound).unwrap();
    assert_eq!(second.stats.groundings, 0, "cached model was re-grounded");
    assert_eq!(answer_set(&second), answer_set(&first));
}

#[test]
fn results_serialise_for_the_experiments_runner() {
    let mut db = game_db();
    let result = db.query(&parse_query("?- winning(X).").unwrap()).unwrap();
    let json = serde_json::to_string(&result).unwrap();
    assert!(json.contains("\"plan\""));
    assert!(json.contains("\"strategy\":\"magic-sets\""));
    assert!(json.contains("\"stats\""));
}

#[test]
fn session_agrees_with_the_figure_1_and_stable_routes() {
    let program = parse_program(
        "winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y).\n\
         game(m). m(a, b). m(b, c).",
    )
    .unwrap();
    let mut wfs_db = HiLogDb::new(program.clone());
    let wfm = wfs_db.model().unwrap().clone();
    let mut modular_db = HiLogDb::builder()
        .program(program.clone())
        .semantics(Semantics::ModularCheck)
        .build();
    let mut stable_db = HiLogDb::builder()
        .program(program)
        .semantics(Semantics::Stable)
        .build();
    for atom in wfm.base() {
        assert_eq!(modular_db.holds(atom).unwrap(), wfm.truth(atom), "{atom}");
        assert_eq!(stable_db.holds(atom).unwrap(), wfm.truth(atom), "{atom}");
    }
}

/// One incremental-vs-fresh comparison: `db` has already answered queries,
/// then receives `fact`; a fresh session is built from the extended program.
/// Both must answer `query` identically.
fn check_incremental_agreement(
    program: &hilog_core::Program,
    fact: &hilog_core::Term,
    query: &hilog_core::rule::Query,
) {
    let mut incremental = HiLogDb::new(program.clone());
    // Warm every cache the plan might use before mutating.
    let _ = incremental.query(query);
    incremental.assert_fact(fact.clone()).unwrap();
    let incremental_result = incremental.query(query).unwrap();

    let mut extended = program.clone();
    extended.push(hilog_core::rule::Rule::fact(fact.clone()));
    let mut fresh = HiLogDb::new(extended);
    let fresh_result = fresh.query(query).unwrap();

    assert_eq!(
        answer_set(&incremental_result),
        answer_set(&fresh_result),
        "incremental and fresh sessions disagree on {query} after asserting {fact}\n{program}"
    );
    assert_eq!(incremental_result.truth, fresh_result.truth);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For random range-restricted normal programs, `assert_fact` followed by
    /// a query agrees with building a fresh `HiLogDb` from the extended
    /// program — under both plan families: a bound query (magic-sets route,
    /// with WFS fallback on non-modularly-stratified instances) and an
    /// unbound query (full-model route).
    #[test]
    fn assert_fact_agrees_with_fresh_session(
        seed in 0u64..5_000,
        edb in 0usize..2,
        idb in 0usize..3,
        a in 0usize..5,
        b in 0usize..5,
    ) {
        let program = random_range_restricted_normal(NormalProgramConfig::default(), seed);
        let fact = hilog_core::Term::apps(
            format!("edb{edb}"),
            vec![
                hilog_core::Term::sym(format!("c{a}")),
                hilog_core::Term::sym(format!("c{b}")),
            ],
        );
        // Magic-sets plan: bound query on a derived predicate.
        let bound = parse_query(&format!("?- idb{idb}(X).")).unwrap();
        check_incremental_agreement(&program, &fact, &bound);
        // Full-model plan: unbound query over every unary atom.
        let unbound = parse_query("?- P(X).").unwrap();
        check_incremental_agreement(&program, &fact, &unbound);
    }

    /// Retraction undoes assertion: after assert + retract the session
    /// answers exactly like an untouched session.
    #[test]
    fn retract_restores_previous_answers(seed in 0u64..5_000, idb in 0usize..3) {
        let program = random_range_restricted_normal(NormalProgramConfig::default(), seed);
        let query = parse_query(&format!("?- idb{idb}(X).")).unwrap();
        let mut pristine = HiLogDb::new(program.clone());
        let before = pristine.query(&query).unwrap();

        let fact = hilog_core::Term::apps(
            "edb0",
            vec![hilog_core::Term::sym("c0"), hilog_core::Term::sym("c1")],
        );
        let mut mutated = HiLogDb::new(program);
        let _ = mutated.query(&query);
        mutated.assert_fact(fact.clone()).unwrap();
        let _ = mutated.query(&query);
        prop_assert!(mutated.retract_fact(&fact));
        let after = mutated.query(&query).unwrap();
        prop_assert_eq!(answer_set(&after), answer_set(&before));
    }
}
