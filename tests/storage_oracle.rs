//! Differential oracle for the pluggable relation-storage backends: under
//! arbitrary insert/remove churn and probing, a [`FactStore`] on the spill
//! backend must be observationally identical to one on the in-memory
//! backend — same novelty/presence results, same candidate sets, same
//! name-keyed ranges, same ordered iteration.  The spill store runs with a
//! deliberately tiny residency budget so relations keep getting paged out
//! and faulted back *between* the probes that compare them.
//!
//! Seeds are pinned (`SEED_BASE` + case index) so failures reproduce;
//! `HILOG_STORAGE_ORACLE_CASES` scales the case count up in CI.

use hilog_engine::{FactStore, RelationStorage, StorageConfig};
use hilog_repro::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEED_BASE: u64 = 0x5709_4A6E;

/// Residency budget in facts — far below the stores' sizes, so cold
/// relations spill continuously.
const TINY_BUDGET: usize = 24;

fn cases() -> u64 {
    std::env::var("HILOG_STORAGE_ORACLE_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40)
}

const FUNCTORS: &[&str] = &["move", "edge", "game", "winning", "p", "q"];
const CONSTANTS: &[&str] = &["a", "b", "c", "d", "e", "hub", "n1", "n2"];

/// A random ground atom: first-order (`f(c, ...)`) with arity 0..=3, a bare
/// symbol, or HiLog-shaped (`winning(g)(c)` — a compound predicate name).
fn random_atom(rng: &mut StdRng) -> Term {
    let constant = |rng: &mut StdRng| -> Term {
        if rng.gen_bool(0.2) {
            Term::int(rng.gen_range(0..5))
        } else {
            Term::sym(CONSTANTS[rng.gen_range(0..CONSTANTS.len())])
        }
    };
    match rng.gen_range(0..10u32) {
        0 => Term::sym(FUNCTORS[rng.gen_range(0..FUNCTORS.len())]),
        1 | 2 => {
            let name = Term::apps(
                FUNCTORS[rng.gen_range(0..FUNCTORS.len())],
                vec![constant(rng)],
            );
            Term::app(name, vec![constant(rng)])
        }
        _ => {
            let arity = rng.gen_range(0..4usize);
            Term::apps(
                FUNCTORS[rng.gen_range(0..FUNCTORS.len())],
                (0..arity).map(|_| constant(rng)).collect(),
            )
        }
    }
}

/// A random pattern: take an atom shape and open a random subset of
/// argument positions (sometimes the predicate name too) to variables.
fn random_pattern(rng: &mut StdRng, population: &[Term]) -> Term {
    let template = if population.is_empty() || rng.gen_bool(0.3) {
        random_atom(rng)
    } else {
        population[rng.gen_range(0..population.len())].clone()
    };
    let name = if rng.gen_bool(0.15) {
        Term::var("P")
    } else {
        template.name().clone()
    };
    if template.args().is_empty() && template.arity().is_none() {
        return template;
    }
    let args: Vec<Term> = template
        .args()
        .iter()
        .enumerate()
        .map(|(i, arg)| {
            if rng.gen_bool(0.5) {
                Term::var(format!("X{i}"))
            } else {
                arg.clone()
            }
        })
        .collect();
    Term::app(name, args)
}

/// The *matches* of `pattern` in `store` — candidates are only required to
/// be a superset restricted by the backend's access path, so the comparable
/// set is candidates filtered through the matcher.
fn matches_of(store: &FactStore, pattern: &Term) -> Vec<Term> {
    let mut out: Vec<Term> = store
        .collect_candidates(pattern)
        .into_iter()
        .filter(|c| {
            let mut theta = Substitution::new();
            hilog_core::unify::match_with(pattern, c, &mut theta)
        })
        .collect();
    out.sort();
    out
}

/// Name-keyed range probe, as the ordered model base performs it.
fn named_of(store: &FactStore, name: &Term, arity: Option<usize>) -> Vec<Term> {
    let mut out = Vec::new();
    store.for_each_named(name, arity, &mut |t| out.push(t.clone()));
    out
}

fn compare_probes(mem: &FactStore, spill: &FactStore, rng: &mut StdRng, pop: &[Term], seed: u64) {
    let pattern = random_pattern(rng, pop);
    assert_eq!(
        matches_of(mem, &pattern),
        matches_of(spill, &pattern),
        "seed {seed}: candidate matches diverge for `{pattern}`"
    );
    if let Some(atom) = pop.get(rng.gen_range(0..pop.len().max(1))) {
        assert_eq!(
            mem.contains(atom),
            spill.contains(atom),
            "seed {seed}: containment diverges for `{atom}`"
        );
        let name = atom.name().clone();
        let arity = if rng.gen_bool(0.5) {
            atom.arity()
        } else {
            None
        };
        assert_eq!(
            named_of(mem, &name, arity),
            named_of(spill, &name, arity),
            "seed {seed}: named range diverges for `{name}`/{arity:?}"
        );
    }
}

#[test]
fn spill_store_is_observationally_identical_to_in_memory_under_churn() {
    for case in 0..cases() {
        let seed = SEED_BASE + case;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mem = FactStore::new(&StorageConfig::InMemory);
        let mut spill = FactStore::new(&StorageConfig::Spill {
            dir: None,
            resident_budget: TINY_BUDGET,
        });
        let mut population: Vec<Term> = (0..60).map(|_| random_atom(&mut rng)).collect();
        for step in 0..120 {
            let atom = population[rng.gen_range(0..population.len())].clone();
            if rng.gen_bool(0.65) {
                assert_eq!(
                    mem.insert(atom.clone()),
                    spill.insert(atom.clone()),
                    "seed {seed} step {step}: insert novelty diverged for `{atom}`"
                );
            } else {
                assert_eq!(
                    mem.remove(&atom),
                    spill.remove(&atom),
                    "seed {seed} step {step}: remove presence diverged for `{atom}`"
                );
            }
            if rng.gen_bool(0.15) {
                population.push(random_atom(&mut rng));
            }
            assert_eq!(mem.len(), spill.len(), "seed {seed} step {step}: len");
            // Probing *during* the churn is the point: a probe faults cold
            // relations back in, and the next mutations must keep the
            // paged-out copies coherent with what the probe re-heated.
            compare_probes(&mem, &spill, &mut rng, &population, seed);
        }
        // Full ordered iteration must agree exactly (spilled rows decode
        // back into the same term order).
        assert_eq!(
            mem.collect_atoms(),
            spill.collect_atoms(),
            "seed {seed}: ordered iteration diverged"
        );
        // With a 24-fact budget and ~60+ atoms across churn, the spill
        // store must actually have exercised the paging path.
        let stats = spill.storage_stats();
        assert!(
            stats.spill_writes > 0,
            "seed {seed}: nothing ever spilled — the oracle tested nothing"
        );
    }
}

#[test]
fn spill_store_survives_heavy_single_relation_skew() {
    // All facts in one relation: the relation itself is bigger than the
    // budget, so it pages out and back as a unit around each probe.
    let seed = SEED_BASE ^ 0x5EED;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mem = FactStore::new(&StorageConfig::InMemory);
    let mut spill = FactStore::new(&StorageConfig::Spill {
        dir: None,
        resident_budget: TINY_BUDGET,
    });
    let mut population = Vec::new();
    for i in 0..200 {
        let atom = Term::apps("edge", vec![Term::int(i % 97), Term::int((i * 7) % 89)]);
        population.push(atom.clone());
        assert_eq!(mem.insert(atom.clone()), spill.insert(atom));
        if i % 17 == 0 {
            compare_probes(&mem, &spill, &mut rng, &population, seed);
        }
    }
    for i in (0..200).step_by(3) {
        let atom: &Term = &population[i];
        assert_eq!(mem.remove(atom), spill.remove(atom));
    }
    assert_eq!(mem.collect_atoms(), spill.collect_atoms());
    assert!(spill.storage_stats().spill_writes > 0);
}
