//! Parser / printer round-trip properties: the concrete syntax printed for a
//! program re-parses to the same program, both for the paper's programs and
//! for generated workloads.

use hilog_core::program::Program;
use hilog_syntax::{parse_program, parse_term, program_to_source};
use hilog_workloads::random_programs::{
    random_ground_extension, random_range_restricted_normal, random_strongly_restricted_hilog,
    ExtensionConfig, HilogProgramConfig, NormalProgramConfig,
};
use hilog_workloads::{chain, hilog_game_program, random_dag};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn rule_set(program: &Program) -> BTreeSet<String> {
    program.iter().map(|r| r.to_string()).collect()
}

fn assert_roundtrip(program: &Program) {
    // Display of each rule re-parses to an equal rule.
    for rule in program.iter() {
        let reparsed = hilog_syntax::parse_rule(&rule.to_string()).unwrap();
        assert_eq!(&reparsed, rule, "rule display does not round-trip: {rule}");
    }
    // The whole-program pretty printer preserves the rule set.
    let source = program_to_source(program);
    let reparsed = parse_program(&source).unwrap();
    assert_eq!(rule_set(program), rule_set(&reparsed));
}

#[test]
fn paper_programs_roundtrip() {
    let texts = [
        "tc(G)(X, Y) :- G(X, Y).\n tc(G)(X, Y) :- G(X, Z), tc(G)(Z, Y).",
        "maplist(F)([], []).\n maplist(F)([X | R], [Y | Z]) :- F(X, Y), maplist(F)(R, Z).",
        "p :- q. q :- p. r :- s, not p. s. t :- not r. u :- not u.",
        "p :- not q. q :- not p. r :- p. r :- q. t :- p, not p.",
        "p :- not q(X). q(a).",
        "p :- X(Y), Y(X).",
        "winning(M)(X) :- game(M), M(X, Y), not winning(M)(Y). game(move1). move1(a, b).",
        "X(a) :- X(X), not X(a).",
        "p(X) :- t(X, Y, Z, P), not p(Y), not p(Z). t(a, b, a, p). p(b) :- t(X, Y, b, P).",
        "in(Mach, X, Y, null, N) :- assoc(Mach, Part), Part(X, Y, N).\n\
         in(Mach, X, Y, Z, N) :- assoc(Mach, Part), Part(X, Z, P), contains(Mach, Z, Y, M), N is P * M.\n\
         contains(Mach, X, Y, N) :- N = sum(P, in(Mach, X, Y, W, P)).",
        // The paper writes this rule with `not` as the head functor; `not` is
        // a keyword of the concrete syntax, so the repository's programs use
        // `neg` for the same shape (a 0-ary application head whose name
        // carries the variable).
        "neg(X)() :- not X.",
        "w(M)(X) :- g(M), M(X, Y), not w(M)(Y). g(m). m(a, b).",
    ];
    for text in texts {
        let program = parse_program(text).unwrap();
        assert_roundtrip(&program);
    }
}

#[test]
fn quoted_symbols_and_integers_roundtrip() {
    let program = parse_program(
        "part('Front Wheel', spoke, 47). cost('x-y', -12). threshold(T) :- part(P, Q, N), T is N * 2 + 1.",
    )
    .unwrap();
    assert_roundtrip(&program);
    // Terms round-trip individually as well.
    for text in [
        "'Front Wheel'",
        "f(a, -3)",
        "[a, b | T]",
        "tc(e)(a, b)",
        "p()",
    ] {
        let term = parse_term(text).unwrap();
        let reparsed = parse_term(&term.to_string()).unwrap();
        assert_eq!(term, reparsed, "{text}");
    }
}

#[test]
fn generated_game_programs_roundtrip() {
    for seed in 0..5u64 {
        let program = hilog_game_program(&[("g1", random_dag(12, 2.0, seed)), ("g2", chain(6))]);
        assert_roundtrip(&program);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_normal_programs_roundtrip(seed in 0u64..10_000) {
        let program = random_range_restricted_normal(NormalProgramConfig::default(), seed);
        assert_roundtrip(&program);
    }

    #[test]
    fn random_hilog_programs_roundtrip(seed in 0u64..10_000) {
        let program = random_strongly_restricted_hilog(HilogProgramConfig::default(), seed);
        assert_roundtrip(&program);
    }

    #[test]
    fn random_extensions_roundtrip(seed in 0u64..10_000) {
        let program = random_ground_extension(ExtensionConfig::default(), seed);
        assert_roundtrip(&program);
    }
}
