//! Offline stub of the [`criterion`](https://crates.io/crates/criterion) API
//! surface used by this workspace's benches.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal harness that is source-compatible with the subset the benches
//! use: [`Criterion::benchmark_group`], group `sample_size` /
//! `warm_up_time` / `measurement_time` / `bench_with_input` / `finish`,
//! [`BenchmarkId::new`], [`Bencher::iter`] and the `criterion_group!` /
//! `criterion_main!` macros. It runs each benchmark for a bounded number of
//! iterations and prints the median wall-clock time — useful as a smoke
//! signal, not a statistically careful measurement.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimiser from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    median: Duration,
}

impl Bencher {
    /// Times `routine`, keeping the median of a bounded number of runs.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut samples: Vec<Duration> = (0..self.iters)
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed()
            })
            .collect();
        samples.sort();
        self.median = samples[samples.len() / 2];
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples (clamped; the stub keeps runs short).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Accepted for compatibility; the stub does no separate warm-up.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the stub bounds iterations, not time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            iters: self.sample_size.clamp(1, 10) as u64,
            median: Duration::ZERO,
        };
        f(&mut bencher, input);
        println!(
            "bench {}/{}: median {:?} over {} iters",
            self.name, id.id, bencher.median, bencher.iters
        );
        self
    }

    /// Runs one unparameterised benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: self.sample_size.clamp(1, 10) as u64,
            median: Duration::ZERO,
        };
        f(&mut bencher);
        println!(
            "bench {}/{}: median {:?} over {} iters",
            self.name,
            id.into(),
            bencher.median,
            bencher.iters
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_times_a_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| {
                runs += 1;
                (0..n).sum::<u64>()
            })
        });
        group.finish();
        assert!(runs >= 3);
    }
}
