//! Offline stub of the [`proptest`](https://crates.io/crates/proptest) API
//! surface used by this workspace.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal property-testing harness that is source-compatible with the
//! subset of proptest the tests use: the [`proptest!`] macro, integer-range /
//! [`Just`] / tuple strategies, `prop_oneof!`, `prop_map`, `prop_filter`,
//! `prop_recursive`, [`collection::vec`] and `prop_assert*` macros.
//!
//! Differences from upstream: generation is plain seeded pseudo-random (no
//! shrinking, no persisted failure regressions); a failing case panics with
//! the case index so it can be reproduced deterministically.

#![forbid(unsafe_code)]

use std::ops::Range;
use std::rc::Rc;

/// Deterministic test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator used for case `case` of a deterministic run.
    pub fn for_case(case: u64) -> Self {
        TestRng {
            state: 0xD1B5_4A32_D192_ED03 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// A source of pseudo-random values of one type.
///
/// Unlike upstream proptest there is no value tree or shrinking; a strategy
/// simply generates a value from the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `f`, retrying generation on rejection.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Builds a recursive strategy: `self` generates leaves, and `recurse`
    /// wraps a strategy for smaller values into one for larger values, up to
    /// `depth` levels. `desired_size` and `expected_branch_size` are accepted
    /// for source compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            let leaf = strat.clone();
            let deeper = recurse(strat).boxed();
            strat = Union {
                choices: vec![leaf, deeper],
            }
            .boxed();
        }
        strat
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A reference-counted, type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<V>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;
    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 10000 candidates", self.whence);
    }
}

/// Uniform choice among several strategies of one value type (`prop_oneof!`).
pub struct Union<V> {
    choices: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over already-boxed alternatives.
    pub fn new(choices: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one case");
        Union { choices }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.choices.len() as u64) as usize;
        self.choices[idx].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors whose length is drawn from `len` and whose
    /// elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates `Vec`s with lengths in `len` (half-open).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Reports the failing case index when a property body panics.
#[doc(hidden)]
pub struct CaseGuard {
    name: &'static str,
    case: u32,
}

impl CaseGuard {
    /// Arms the guard for one case.
    pub fn new(name: &'static str, case: u32) -> Self {
        CaseGuard { name, case }
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest: property `{}` failed at deterministic case {}",
                self.name, self.case
            );
        }
    }
}

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let _guard = $crate::CaseGuard::new(stringify!($name), case);
                let mut rng = $crate::TestRng::for_case(case as u64);
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Everything a test normally imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_vec_generate_in_bounds() {
        let mut rng = TestRng::for_case(3);
        let strat = (0usize..10, -5i64..5);
        for _ in 0..200 {
            let (a, b) = strat.generate(&mut rng);
            assert!(a < 10);
            assert!((-5..5).contains(&b));
        }
        let vs = collection::vec(0usize..4, 1..5);
        for _ in 0..200 {
            let v = vs.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn recursive_strategies_terminate_and_vary() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        let strat = (0i64..8)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 3, |inner| {
                collection::vec(inner, 1..3).prop_map(Tree::Node)
            });
        let mut rng = TestRng::for_case(11);
        let mut saw_node = false;
        let mut saw_leaf = false;
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                Tree::Leaf(_) => saw_leaf = true,
                Tree::Node(_) => saw_node = true,
            }
        }
        assert!(saw_leaf && saw_node);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_binds_all_args(a in 0usize..100, b in 0usize..100) {
            prop_assert!(a < 100);
            prop_assert_ne!(b, 100);
            prop_assert_eq!(a + b, b + a);
        }
    }

    proptest! {
        #[test]
        fn filter_and_oneof_compose(v in prop_oneof![0usize..10, 90usize..100].prop_filter("even", |x| x % 2 == 0)) {
            prop_assert!(v % 2 == 0);
            prop_assert!(!(10..90).contains(&v));
        }
    }
}
