//! Offline stub of the [`rand`](https://crates.io/crates/rand) 0.8 API
//! surface used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, deterministic implementation of exactly the items the code
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over half-open integer ranges, and [`Rng::gen_bool`].
//! `StdRng` here is a SplitMix64 generator — statistically fine for workload
//! generation, NOT cryptographic, and its streams differ from upstream
//! `rand`'s `StdRng` (seeded workloads are stable within this repo only).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Constructing generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with empty range");
                let span = (high - low) as u64;
                low + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with empty range");
                let span = (high as i128 - low as i128) as u64;
                (low as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range called with empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

/// Ranges that can be sampled from (subset of `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Samples uniformly from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = self.into_inner();
                assert!(low <= high, "gen_range called with empty range");
                if high < <$t>::MAX {
                    <$t>::sample_range(rng, low, high + 1)
                } else if low > <$t>::MIN {
                    <$t>::sample_range(rng, low - 1, high) + 1
                } else {
                    // The full domain of the type.
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_sample_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..20);
            assert!((-5..20).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "hits = {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
