//! Offline stub of the [`serde`](https://crates.io/crates/serde) API surface
//! used by this workspace.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! minimal JSON-only serialisation trait plus a `#[derive(Serialize)]` proc
//! macro (see `vendor/serde_derive`). The companion `serde_json` stub renders
//! [`Serialize`] values to JSON text. This is NOT the real serde data model —
//! only what `hilog-bench` needs.

#![forbid(unsafe_code)]

pub use serde_derive::Serialize;

/// Types that can render themselves as a JSON value.
///
/// Unlike real serde there is no `Serializer` abstraction: the stub's only
/// backend is JSON text, written directly.
pub trait Serialize {
    /// Appends the compact JSON encoding of `self` to `out`.
    fn write_json(&self, out: &mut String);
}

/// Escapes and appends a JSON string literal.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Helper used by the derive macro to write one `"name":value` field.
#[doc(hidden)]
pub fn write_field<T: Serialize + ?Sized>(out: &mut String, name: &str, value: &T, first: bool) {
    if !first {
        out.push(',');
    }
    write_json_string(out, name);
    out.push(':');
    value.write_json(out);
}

impl Serialize for str {
    fn write_json(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

impl Serialize for String {
    fn write_json(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

impl Serialize for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}

impl_serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                if self.is_finite() {
                    out.push_str(&self.to_string());
                } else {
                    out.push_str("null");
                }
            }
        }
    )*};
}

impl_serialize_float!(f32, f64);

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.write_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

#[cfg(test)]
mod tests {
    use super::Serialize;

    #[test]
    fn primitives_and_containers_encode_as_json() {
        let mut out = String::new();
        "a\"b\\c\n".to_string().write_json(&mut out);
        assert_eq!(out, r#""a\"b\\c\n""#);

        let mut out = String::new();
        vec![1i64, -2].write_json(&mut out);
        assert_eq!(out, "[1,-2]");

        let mut out = String::new();
        Some(2.5f64).write_json(&mut out);
        assert_eq!(out, "2.5");

        let mut out = String::new();
        None::<bool>.write_json(&mut out);
        assert_eq!(out, "null");

        let mut out = String::new();
        f64::NAN.write_json(&mut out);
        assert_eq!(out, "null");
    }
}
