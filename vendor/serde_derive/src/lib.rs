//! Offline stub of serde's `#[derive(Serialize)]`.
//!
//! Supports plain (non-generic) structs with named fields, which is all this
//! workspace derives. The generated impl targets the JSON-only `Serialize`
//! trait of the vendored `serde` stub. Written against `proc_macro` alone —
//! the build environment has no crates.io access, so `syn`/`quote` are
//! unavailable.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the vendored `serde::Serialize` (JSON-only) for a struct with
/// named fields.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();

    // Find `struct <Name> { ... }`, skipping attributes and visibility.
    let mut name = None;
    let mut fields_group = None;
    let mut iter = tokens.iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match iter.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => {
                        panic!("#[derive(Serialize)] stub: expected struct name, got {other:?}")
                    }
                }
                for rest in iter.by_ref() {
                    match rest {
                        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                            fields_group = Some(g.stream());
                            break;
                        }
                        TokenTree::Punct(p) if p.as_char() == '<' => {
                            panic!("#[derive(Serialize)] stub: generic structs are unsupported")
                        }
                        _ => {}
                    }
                }
                break;
            }
            _ => {}
        }
    }

    let name = name.expect("#[derive(Serialize)] stub: only structs are supported");
    let body = fields_group
        .expect("#[derive(Serialize)] stub: only structs with named fields are supported");

    // Collect field names. Each field is `(#[attr])* (pub (..)?)? name : type ,`;
    // a type may itself contain `::` and `<A, B>`, so while skipping a type we
    // track angle-bracket depth and only end the field at a depth-0 comma.
    enum State {
        ExpectName,
        ExpectColon(String),
        InType(isize),
    }
    let mut fields = Vec::new();
    let mut state = State::ExpectName;
    for tt in body {
        state = match (state, &tt) {
            (State::ExpectName, TokenTree::Punct(p)) if p.as_char() == '#' => State::ExpectName,
            (State::ExpectName, TokenTree::Group(_)) => State::ExpectName,
            (State::ExpectName, TokenTree::Ident(id)) if id.to_string() == "pub" => {
                State::ExpectName
            }
            (State::ExpectName, TokenTree::Ident(id)) => State::ExpectColon(id.to_string()),
            (State::ExpectColon(name), TokenTree::Punct(p)) if p.as_char() == ':' => {
                fields.push(name);
                State::InType(0)
            }
            (State::InType(0), TokenTree::Punct(p)) if p.as_char() == ',' => State::ExpectName,
            (State::InType(d), TokenTree::Punct(p)) if p.as_char() == '<' => State::InType(d + 1),
            (State::InType(d), TokenTree::Punct(p)) if p.as_char() == '>' => State::InType(d - 1),
            (s, _) => s,
        };
    }

    let mut writes = String::new();
    for (i, f) in fields.iter().enumerate() {
        writes.push_str(&format!(
            "::serde::write_field(out, \"{f}\", &self.{f}, {first});\n",
            first = i == 0
        ));
    }

    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn write_json(&self, out: &mut ::std::string::String) {{\n\
         out.push('{{');\n\
         {writes}\
         out.push('}}');\n\
         }}\n\
         }}\n"
    )
    .parse()
    .expect("#[derive(Serialize)] stub: generated impl must parse")
}
