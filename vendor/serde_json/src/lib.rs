//! Offline stub of the [`serde_json`](https://crates.io/crates/serde_json)
//! surface used by this workspace: [`to_string`] and [`to_string_pretty`]
//! over the vendored JSON-only `serde::Serialize` trait, plus a dynamic
//! [`Value`] with a [`from_str`] parser (used by `hilog-server` to read
//! request bodies).

#![forbid(unsafe_code)]

use serde::Serialize;

mod value;

pub use value::{from_str, Value};

/// Error type for serialisation and parsing.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    pub(crate) fn msg(message: String) -> Self {
        Error(message)
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0.is_empty() {
            f.write_str("serde_json stub error")
        } else {
            f.write_str(&self.0)
        }
    }
}

impl std::error::Error for Error {}

/// Serialises `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.write_json(&mut out);
    Ok(out)
}

/// Serialises `value` as indented JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    Ok(prettify(&compact))
}

/// Re-indents compact JSON. Operates on the text, respecting string
/// literals and escapes, so it needs no parse tree.
fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let push_newline = |out: &mut String, indent: usize| {
        out.push('\n');
        for _ in 0..indent {
            out.push_str("  ");
        }
    };
    let mut chars = compact.chars().peekable();
    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                // Keep empty containers on one line.
                if chars.peek() == Some(&'}') || chars.peek() == Some(&']') {
                    out.push(chars.next().unwrap());
                } else {
                    indent += 1;
                    push_newline(&mut out, indent);
                }
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                push_newline(&mut out, indent);
                out.push(c);
            }
            ',' => {
                out.push(c);
                push_newline(&mut out, indent);
            }
            ':' => {
                out.push_str(": ");
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_string_is_compact() {
        let rows = vec!["a".to_string(), "b".to_string()];
        assert_eq!(to_string(&rows).unwrap(), r#"["a","b"]"#);
    }

    #[test]
    fn pretty_indents_and_respects_strings() {
        let rows = vec!["a{,}:".to_string()];
        let pretty = to_string_pretty(&rows).unwrap();
        assert_eq!(pretty, "[\n  \"a{,}:\"\n]");
    }

    #[test]
    fn pretty_keeps_empty_containers_inline() {
        let empty: Vec<String> = Vec::new();
        assert_eq!(to_string_pretty(&empty).unwrap(), "[]");
    }
}
