//! A minimal dynamic JSON value and recursive-descent parser, mirroring the
//! `serde_json::Value` / `serde_json::from_str` surface the workspace uses
//! (the `hilog-server` crate parses request bodies with it).

use crate::Error;
use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
///
/// Object keys are kept in a `BTreeMap` (sorted, deduplicated — last write
/// wins, like real serde_json's default), which is all the workspace needs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64` (the stub does not preserve the
    /// integer/float distinction).
    Number(f64),
    /// A string literal, unescaped.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member access: `value.get("key")` on objects, `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string slice if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element vector if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The member map if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        serde::Serialize::write_json(self, &mut out);
        f.write_str(&out)
    }
}

impl serde::Serialize for Value {
    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Value::String(s) => serde::write_json_string(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    serde::write_json_string(out, k);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parses a JSON document.  Exactly one top-level value is accepted;
/// trailing non-whitespace is an error.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, Error> {
        let b = self
            .peek()
            .ok_or_else(|| Error::msg("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.bump()?;
        if got != b {
            return Err(Error::msg(format!(
                "expected `{}` at byte {}, got `{}`",
                b as char,
                self.pos - 1,
                got as char
            )));
        }
        Ok(())
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::msg(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::msg("unexpected end of input".into())),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Value::Array(items)),
                c => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}, got `{}`",
                        self.pos - 1,
                        c as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Value::Object(map)),
                c => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}, got `{}`",
                        self.pos - 1,
                        c as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let code = self.hex4()?;
                        // Surrogate pairs: a high surrogate must be followed
                        // by an escaped low surrogate.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(Error::msg("invalid surrogate pair".into()));
                            }
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(code)
                        };
                        out.push(c.ok_or_else(|| Error::msg("invalid \\u escape".into()))?);
                    }
                    c => {
                        return Err(Error::msg(format!(
                            "invalid escape `\\{}` at byte {}",
                            c as char,
                            self.pos - 1
                        )))
                    }
                },
                // Multi-byte UTF-8: the content is already valid UTF-8 (the
                // input was a &str), so collect continuation bytes verbatim.
                b if b < 0x80 => out.push(b as char),
                b => {
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let _ = b;
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| Error::msg("invalid UTF-8 in string".into()))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = (self.bump()? as char)
                .to_digit(16)
                .ok_or_else(|| Error::msg("invalid hex digit in \\u escape".into()))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number span");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let value = from_str(
            r#"{"query": "?- winning(X).", "limit": 10, "flags": [true, false, null],
               "nested": {"pi": 3.5, "neg": -2e2}}"#,
        )
        .unwrap();
        assert_eq!(value.get("query").unwrap().as_str(), Some("?- winning(X)."));
        assert_eq!(value.get("limit").unwrap().as_u64(), Some(10));
        let flags = value.get("flags").unwrap().as_array().unwrap();
        assert_eq!(flags[0].as_bool(), Some(true));
        assert_eq!(flags[2], Value::Null);
        assert_eq!(
            value.get("nested").unwrap().get("pi").unwrap().as_f64(),
            Some(3.5)
        );
        assert_eq!(
            value.get("nested").unwrap().get("neg").unwrap().as_f64(),
            Some(-200.0)
        );
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let value = from_str(r#""a\"b\\c\n\u0041\u00e9 é""#).unwrap();
        assert_eq!(value.as_str(), Some("a\"b\\c\nAé é"));
    }

    #[test]
    fn round_trips_through_display() {
        let text = r#"{"a":[1,2],"b":"x","c":null}"#;
        let value = from_str(text).unwrap();
        assert_eq!(value.to_string(), text);
        assert_eq!(from_str(&value.to_string()).unwrap(), value);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "tru", r#"{"a" 1}"#, "1 2", "\"\\q\""] {
            assert!(from_str(bad).is_err(), "accepted `{bad}`");
        }
    }
}
